//! Fusion-equivalence property: fusing a pipeline must only remove
//! transfer/invocation overhead, never change results.
//!
//! The test makes every overhead *exactly zero* — no cold/warm start, no
//! intermediate I/O, zero storage latency, per-request prices off — and
//! keeps every remaining quantity dyadic (computes are multiples of
//! 3600/128 s, the FaaS price is a power of two), so float arithmetic is
//! exact and "equivalent" can be checked **bit for bit**: for any
//! generated pipeline, the maximally fused workflow under a forced
//! all-serverless placement reproduces the unfused run's makespan and
//! expense exactly, conserves compute, and its trace is the unfused one
//! with each chain's spans merged.

use mashup_baselines::maximal_fusion;
use mashup_core::{execute_traced, MashupConfig, PlacementPlan, Platform, Tracer};
use mashup_dag::{DependencyPattern, Task, TaskProfile, Workflow, WorkflowBuilder};
use mashup_sim::TraceEvent;
use proptest::prelude::*;

/// A provider with every serverless overhead pinned to exactly zero and
/// every price/speed constant a power of two, so the only nonzero float
/// quantities in a run are the (dyadic) compute windows.
fn overhead_free_cfg() -> MashupConfig {
    let mut cfg = MashupConfig::aws(4);
    cfg.prewarm = false;
    let f = &mut cfg.provider.faas;
    f.cold_start_secs = (0.0, 0.0);
    f.warm_start_secs = 0.0;
    f.timeout_secs = 1.0e6; // never checkpoint: chains sum to < 2 h
    f.price_per_hour = 0.125;
    f.core_speed = 1.0;
    f.per_function_bps = 134_217_728.0; // 2^27
    f.burst_capacity = 1 << 16;
    f.failure_prob = 0.0;
    let s = &mut cfg.provider.storage;
    s.request_latency_secs = 0.0;
    s.aggregate_bps = 1_073_741_824.0; // 2^30
    s.price_per_put = 0.0;
    s.price_per_get = 0.0;
    s.get_failure_prob = 0.0;
    cfg
}

/// A straight pipeline: `len` phases of one task each, OneToOne edges,
/// zero I/O everywhere, compute `n × 28.125 s` (a dyadic multiple of
/// 3600/128, so billed-seconds/3600 is exact), one shared slowdown.
fn pipeline(len: usize, comps: usize, slowdown: f64, computes: &[u32]) -> Workflow {
    let mut b = WorkflowBuilder::new("pipe");
    b.initial_input_bytes(1_048_576.0); // 2^20: staging time is dyadic too
    let mut prev = None;
    for (i, &n) in computes.iter().take(len).enumerate() {
        b.begin_phase();
        let profile = TaskProfile::trivial()
            .compute(n as f64 * 28.125)
            .slowdown(slowdown)
            .memory(0.5);
        let t = b.add_task(Task::new(format!("stage-{i}"), comps, profile));
        if let Some(p) = prev {
            b.depend(t, p, DependencyPattern::OneToOne);
        }
        prev = Some(t);
    }
    b.build().expect("generator only emits valid pipelines")
}

/// Sum of `FnEnd` billed windows and their count from a trace.
fn billed(records: &[mashup_sim::TraceRecord]) -> (f64, usize) {
    let mut total = 0.0;
    let mut n = 0;
    for r in records {
        if let TraceEvent::FnEnd { billed_secs, .. } = r.event {
            total += billed_secs;
            n += 1;
        }
    }
    (total, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: with all overheads zero, fused and
    /// unfused pipelines produce bit-identical reports.
    #[test]
    fn fused_pipeline_is_bit_identical_without_overheads(
        len in 2usize..=5,
        comps in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
        slowdown in (0usize..3).prop_map(|i| [0.5f64, 1.0, 2.0][i]),
        computes in collection::vec(1u32..=16, 5),
    ) {
        let cfg = overhead_free_cfg();
        let w = pipeline(len, comps, slowdown, &computes);
        let fused = maximal_fusion(&w);
        prop_assert_eq!(fused.task_count(), 1, "a pipeline collapses fully");

        let tr_u = Tracer::new();
        let tr_f = Tracer::new();
        let plan_u = PlacementPlan::uniform(&w, Platform::Serverless);
        let plan_f = PlacementPlan::uniform(&fused, Platform::Serverless);
        let r_u = execute_traced(&cfg, &w, &plan_u, "pipe", &tr_u);
        let r_f = execute_traced(&cfg, &fused, &plan_f, "pipe", &tr_f);

        // Time and expense, bit for bit.
        prop_assert_eq!(
            r_f.makespan_secs.to_bits(),
            r_u.makespan_secs.to_bits(),
            "makespan: fused {} vs unfused {}",
            r_f.makespan_secs,
            r_u.makespan_secs
        );
        prop_assert_eq!(r_f.expense.vm_dollars.to_bits(), r_u.expense.vm_dollars.to_bits());
        prop_assert_eq!(
            r_f.expense.faas_dollars.to_bits(),
            r_u.expense.faas_dollars.to_bits(),
            "faas dollars: fused {} vs unfused {}",
            r_f.expense.faas_dollars,
            r_u.expense.faas_dollars
        );
        prop_assert_eq!(
            r_f.expense.storage_dollars.to_bits(),
            r_u.expense.storage_dollars.to_bits()
        );

        // Compute is conserved exactly across the merge.
        let total = |r: &mashup_core::WorkflowReport| {
            r.tasks.iter().map(|t| t.compute_secs).sum::<f64>()
        };
        prop_assert_eq!(total(&r_f).to_bits(), total(&r_u).to_bits());

        // Trace, modulo merged spans: the fused run has one span per
        // component where the unfused run has `len`, the billed seconds
        // are identical in total, and no invocation was killed.
        let rec_u = tr_u.take();
        let rec_f = tr_f.take();
        let (billed_u, ends_u) = billed(&rec_u);
        let (billed_f, ends_f) = billed(&rec_f);
        prop_assert_eq!(ends_u, len * comps);
        prop_assert_eq!(ends_f, comps);
        prop_assert_eq!(
            billed_f.to_bits(),
            billed_u.to_bits(),
            "billed seconds: fused {billed_f} vs unfused {billed_u}"
        );
        let kills = |recs: &[mashup_sim::TraceRecord]| {
            recs.iter()
                .filter(|r| matches!(r.event, TraceEvent::FnKill { .. }))
                .count()
        };
        prop_assert_eq!(kills(&rec_u), 0);
        prop_assert_eq!(kills(&rec_f), 0);
    }
}
