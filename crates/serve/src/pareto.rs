//! The parallel Pareto sweep driver.
//!
//! Drives the candidate space of [`mashup_core::pareto`] through the PDC
//! on the shared worker pool ([`par_map`](crate::par_map)) and a shared
//! [`PlanCache`], in three stages:
//!
//! 1. **Enumerate + prune** — candidates arrive in radius waves
//!    ([`enumerate`]); each wave is fingerprint-deduplicated and
//!    branch-and-bound pruned against the running estimate front
//!    ([`optimistic_bounds`] / [`bound_dominated`]) before dispatch.
//! 2. **Evaluate** — survivors are planned in parallel via
//!    [`Pdc::replan_structural`] from the base report: phases untouched by
//!    a candidate's fusions reuse base decisions, and every per-task,
//!    per-tier probe lands in the shared cache, so repeated sweeps run
//!    almost entirely warm.
//! 3. **Execute** — the estimate-front survivors run end to end
//!    ([`execute_sized`]) and the final front is the dominance filter over
//!    their *measured* (makespan, expense) points.
//!
//! Pruning consults only completed waves and `par_map` merges in input
//! order, so the outcome is bit-identical at any `--jobs` count.

use mashup_core::pareto::{
    bound_dominated, enumerate, estimate_plan, materialize, optimistic_bounds, pareto_mask,
    Candidate, Materialized, SearchSpace,
};
use mashup_core::{
    execute_sized, CacheStats, Fingerprinter, MashupConfig, Pdc, PdcReport, PlanCache, Platform,
    ReplanStats,
};
use mashup_dag::Workflow;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One executed point of the final front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// Candidate summary, e.g. `"fuse[A→B] size[C:8GB]"` (`"base"` for the
    /// unmodified engine).
    pub label: String,
    /// Measured end-to-end makespan, seconds.
    pub makespan_secs: f64,
    /// Measured total expense, dollars.
    pub expense_dollars: f64,
    /// Model-side estimate the sweep ranked this candidate by.
    pub est_makespan_secs: f64,
    /// Model-side expense estimate.
    pub est_expense_dollars: f64,
    /// Fusion rewrites applied.
    pub fused_pairs: usize,
    /// Tasks moved off the base memory tier.
    pub resized_tasks: usize,
}

/// Sweep bookkeeping (the CLI's stderr stats line and the bench's JSON).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Candidates the enumerator produced within budget.
    pub generated: usize,
    /// Dropped before dispatch: materialized to an already-seen
    /// configuration.
    pub deduped: usize,
    /// Dropped before dispatch: optimistic bound dominated by the front.
    pub pruned: usize,
    /// Dropped after planning: the PDC mapped the candidate to an execution
    /// already scheduled (same placement, same tiers on serverless tasks —
    /// e.g. resizing a task the plan keeps on the VM cluster).
    pub coalesced: usize,
    /// Candidates actually planned through the PDC.
    pub evaluated: usize,
    /// Estimate-front survivors executed end to end.
    pub executed: usize,
    /// Evaluations that fell back to a full decide.
    pub full_replans: usize,
    /// Decisions carried over verbatim across all evaluations.
    pub reused_decisions: usize,
    /// Tasks re-decided across all evaluations.
    pub replanned_tasks: usize,
    /// Shared plan-cache counters at sweep end.
    pub cache: CacheStats,
}

/// A finished sweep: the measured Pareto front (ascending makespan) plus
/// stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Non-dominated executed points.
    pub front: Vec<FrontPoint>,
    /// Search statistics.
    pub stats: SweepStats,
}

struct Evaluated {
    cand: Candidate,
    mat: Materialized,
    report: PdcReport,
    rstats: ReplanStats,
    est: (f64, f64),
}

/// What an evaluated candidate's execution actually depends on: the fused
/// structure, each task's platform, and — only for serverless tasks — the
/// memory tier.
fn exec_fingerprint(e: &Evaluated) -> u128 {
    let mut f = Fingerprinter::new("pareto-exec-v1");
    let w = &e.mat.workflow;
    f.write_str(&w.name);
    f.write_usize(w.task_count());
    for r in w.task_refs() {
        let flat = w.arena().flat(r).expect("in range");
        let serverless = e.report.plan.platform(r) == Ok(Platform::Serverless);
        f.write_str(w.arena().name(flat));
        f.write_bool(serverless);
        if serverless {
            f.write_f64(e.mat.sizing.tier(flat));
        }
    }
    f.digest()
}

/// Runs a sweep with a fresh cache. See [`pareto_sweep_with`].
pub fn pareto_sweep(cfg: &MashupConfig, workflow: &Workflow, budget: usize) -> SweepOutcome {
    pareto_sweep_with(cfg, workflow, budget, Arc::new(PlanCache::new()))
}

/// Searches `workflow`'s fusion × sizing space under `cfg`, evaluating at
/// most `budget` candidates (must be ≥ 1: the first candidate is always
/// the unmodified engine, so the front is never empty), reusing `cache`
/// across stages — and across repeated sweeps, which then run warm.
pub fn pareto_sweep_with(
    cfg: &MashupConfig,
    workflow: &Workflow,
    budget: usize,
    cache: Arc<PlanCache>,
) -> SweepOutcome {
    assert!(budget >= 1, "a sweep needs at least the base candidate");
    let space = SearchSpace::new(cfg, workflow);
    let base_pdc = Pdc::new(cfg.clone()).with_cache(cache.clone());
    let base_report = base_pdc.decide(workflow);

    let mut stats = SweepStats::default();
    let mut waves: Vec<Vec<Candidate>> = Vec::new();
    for c in enumerate(&space, budget) {
        stats.generated += 1;
        let r = c.radius();
        while waves.len() <= r {
            waves.push(Vec::new());
        }
        waves[r].push(c);
    }

    let mut seen: BTreeSet<u128> = BTreeSet::new();
    let mut evaluated: Vec<Evaluated> = Vec::new();
    for wave in waves {
        // The pruning front is frozen at wave start: estimates from this
        // wave never affect its own pruning, keeping the sweep independent
        // of evaluation order within a wave.
        let front: Vec<(f64, f64)> = evaluated.iter().map(|e| e.est).collect();
        let batch: Vec<(Candidate, Materialized)> = wave
            .into_iter()
            .filter_map(|c| {
                let m = materialize(&space, cfg, &c);
                if !seen.insert(m.fingerprint) {
                    stats.deduped += 1;
                    return None;
                }
                let lb = optimistic_bounds(cfg, &m.workflow, &m.sizing);
                if bound_dominated(&front, lb) {
                    stats.pruned += 1;
                    return None;
                }
                Some((c, m))
            })
            .collect();
        let results = crate::par_map(batch, |(cand, mat)| {
            let pdc = Pdc::new(cfg.clone())
                .with_cache(cache.clone())
                .with_sizing(mat.sizing.clone());
            let (report, rstats) = pdc.replan_structural(workflow, &base_report, &mat.workflow);
            let est = estimate_plan(cfg, &mat.workflow, &mat.sizing, &report);
            Evaluated {
                cand,
                mat,
                report,
                rstats,
                est,
            }
        });
        for e in results {
            stats.evaluated += 1;
            stats.full_replans += e.rstats.full_replan as usize;
            stats.reused_decisions += e.rstats.reused_decisions;
            stats.replanned_tasks += e.rstats.replanned_tasks;
            evaluated.push(e);
        }
    }

    // Collapse candidates the PDC mapped to the same effective execution
    // (platform per task + tier where it matters); radius order keeps the
    // simplest representative.
    let mut seen_exec: BTreeSet<u128> = BTreeSet::new();
    let evaluated: Vec<Evaluated> = evaluated
        .into_iter()
        .filter(|e| {
            if seen_exec.insert(exec_fingerprint(e)) {
                true
            } else {
                stats.coalesced += 1;
                false
            }
        })
        .collect();

    // Execute the estimate-front survivors; everything dominated on the
    // model side never touches the simulator.
    let est_points: Vec<(f64, f64)> = evaluated.iter().map(|e| e.est).collect();
    let est_mask = pareto_mask(&est_points);
    let survivors: Vec<&Evaluated> = evaluated
        .iter()
        .zip(&est_mask)
        .filter(|(_, &keep)| keep)
        .map(|(e, _)| e)
        .collect();
    let executed: Vec<FrontPoint> = crate::par_map(survivors, |e| {
        let report = execute_sized(
            cfg,
            &e.mat.workflow,
            &e.report.plan,
            &e.mat.sizing,
            "pareto",
        );
        FrontPoint {
            label: e.cand.describe(&space),
            makespan_secs: report.makespan_secs,
            expense_dollars: report.expense.total(),
            est_makespan_secs: e.est.0,
            est_expense_dollars: e.est.1,
            fused_pairs: e.cand.fusion.len(),
            resized_tasks: e.cand.tier_devs.len(),
        }
    });
    stats.executed = executed.len();

    let actual: Vec<(f64, f64)> = executed
        .iter()
        .map(|p| (p.makespan_secs, p.expense_dollars))
        .collect();
    let keep = pareto_mask(&actual);
    let mut front: Vec<FrontPoint> = executed
        .into_iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| p)
        .collect();
    front.sort_by(|a, b| {
        a.makespan_secs
            .partial_cmp(&b.makespan_secs)
            .expect("finite makespans")
            .then(
                a.expense_dollars
                    .partial_cmp(&b.expense_dollars)
                    .expect("finite expenses"),
            )
            .then_with(|| a.label.cmp(&b.label))
    });
    stats.cache = cache.stats();
    SweepOutcome { front, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::set_jobs;
    use mashup_workflows::paper_workflows;
    use std::sync::Mutex;

    /// Serializes tests that set the global worker count.
    static JOBS_LOCK: Mutex<()> = Mutex::new(());

    struct JobsGuard;
    impl Drop for JobsGuard {
        fn drop(&mut self) {
            set_jobs(0);
        }
    }

    fn small_cfg() -> MashupConfig {
        MashupConfig::aws(4)
    }

    #[test]
    fn sweep_front_contains_the_base_engine_or_dominates_it() {
        let w = &paper_workflows()[1]; // SRAsearch: smallest of the three
        let out = pareto_sweep(&small_cfg(), w, 40);
        assert!(!out.front.is_empty());
        assert_eq!(out.stats.generated, 40);
        assert!(out.stats.evaluated <= 40);
        // Every front point is non-dominated within the front.
        for a in &out.front {
            for b in &out.front {
                let dominates = a.makespan_secs <= b.makespan_secs
                    && a.expense_dollars <= b.expense_dollars
                    && (a.makespan_secs < b.makespan_secs || a.expense_dollars < b.expense_dollars);
                assert!(!dominates, "{} dominates {}", a.label, b.label);
            }
        }
        // The base engine's point is matched or beaten on both axes.
        let base = pareto_sweep(&small_cfg(), w, 1);
        assert_eq!(base.front.len(), 1);
        assert_eq!(base.front[0].label, "base");
        let (bt, be) = (base.front[0].makespan_secs, base.front[0].expense_dollars);
        assert!(out
            .front
            .iter()
            .any(|p| p.makespan_secs <= bt && p.expense_dollars <= be));
    }

    #[test]
    fn sweep_is_bit_identical_across_worker_counts() {
        let _lock = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = JobsGuard;
        let w = &paper_workflows()[1];
        let mut outcomes = Vec::new();
        for jobs in [1, 4, 16] {
            set_jobs(jobs);
            outcomes.push(pareto_sweep(&small_cfg(), w, 30));
        }
        assert_eq!(outcomes[0].front, outcomes[1].front);
        assert_eq!(outcomes[1].front, outcomes[2].front);
        // Search-shape stats are thread-count independent too (cache
        // counters differ only if a probe raced, which dedupe prevents).
        assert_eq!(outcomes[0].stats.generated, outcomes[2].stats.generated);
        assert_eq!(outcomes[0].stats.pruned, outcomes[2].stats.pruned);
        assert_eq!(outcomes[0].stats.evaluated, outcomes[2].stats.evaluated);
        assert_eq!(outcomes[0].stats.executed, outcomes[2].stats.executed);
    }

    #[test]
    fn shared_cache_keeps_insertions_bounded_and_reruns_warm() {
        let w = &paper_workflows()[1];
        let cache = Arc::new(PlanCache::new());
        let cold = pareto_sweep_with(&small_cfg(), w, 25, cache.clone());
        let after_cold = cache.stats();
        // Dedupe before dispatch: the probe section can hold at most one
        // entry per (task, tier) pair ever dispatched, never more than the
        // evaluated candidate count times the task count.
        let unique_dispatched = cold.stats.evaluated;
        assert!(unique_dispatched > 0);
        assert!(
            after_cold.probes.entries <= (unique_dispatched * w.task_count()) as u64,
            "probe insertions {} exceed dispatched work {}",
            after_cold.probes.entries,
            unique_dispatched * w.task_count()
        );
        // A second identical sweep is answered from the cache: no new
        // entries anywhere, plenty of fresh hits.
        let warm = pareto_sweep_with(&small_cfg(), w, 25, cache.clone());
        let after_warm = cache.stats();
        assert_eq!(after_cold.probes.entries, after_warm.probes.entries);
        assert_eq!(after_cold.vm_profile.entries, after_warm.vm_profile.entries);
        assert!(after_warm.hits() > after_cold.hits());
        assert_eq!(cold.front, warm.front);
    }
}
