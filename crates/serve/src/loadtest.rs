//! Closed-loop load-test harness for the planning service.
//!
//! A *closed loop* means each simulated client has exactly one request in
//! flight: it submits, blocks on the [`Ticket`], records the latency, and
//! only then issues its next request. Offered load is therefore controlled
//! by the client count (`parallelism`), not an open-loop arrival rate, and
//! a bounded queue never overflows from the harness itself (at most
//! `parallelism` requests are queued or running at once).
//!
//! The harness reports wall-clock throughput and nearest-rank latency
//! percentiles per sweep point, plus a worker-scaling series on a
//! warm-cache mix. This module is the one place in the serving stack that
//! reads the host clock — simulated substrates stay wall-clock-free (see
//! `cargo xtask lint`), which is exactly what makes a "run" here a pure,
//! timeable unit of work.
//!
//! [`Ticket`]: crate::service::Ticket

use crate::service::{
    PlanRequest, PlanService, RequestKind, ServiceConfig, ServiceStats, WorkflowName,
};
use serde::Serialize;
use std::sync::Mutex;
// The load-test harness measures real service latency by design — its
// output is observability, not simulated results; lint: allow(wall-clock)
use std::time::Instant;

/// One sweep point's knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LoadTestSpec {
    /// Requests to complete.
    pub requests: usize,
    /// Concurrent closed-loop clients.
    pub parallelism: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Queue depth (admission limit).
    pub queue_depth: usize,
    /// Pre-warm the plan cache serially with one request of each distinct
    /// shape before timing, so the timed region measures steady-state
    /// serving rather than first-touch profiling.
    pub warm: bool,
}

impl Default for LoadTestSpec {
    fn default() -> Self {
        LoadTestSpec {
            requests: 100,
            parallelism: 8,
            workers: crate::pool::jobs(),
            queue_depth: 1024,
            warm: true,
        }
    }
}

/// Measured results for one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LoadPoint {
    /// Requests asked for.
    pub requests: usize,
    /// Closed-loop clients.
    pub parallelism: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Replies with status `Done`.
    pub completed: usize,
    /// Replies with status `Refused` (static analysis).
    pub refused: usize,
    /// Submissions rejected by admission control.
    pub rejected: usize,
    /// Timed-region wall time, seconds.
    pub elapsed_secs: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Plan-cache hit percentage over the whole point (warm-up included).
    pub cache_hit_pct: f64,
}

/// One worker-scaling measurement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScalingPoint {
    /// Service worker threads.
    pub workers: usize,
    /// Completed requests per second at this worker count.
    pub throughput_rps: f64,
    /// Throughput relative to the 1-worker run.
    pub speedup: f64,
}

/// The full load-test report (`results/BENCH_serve.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LoadTestReport {
    /// Cores available on the measuring host — the ceiling on CPU-bound
    /// worker scaling; speedups saturate near this number.
    pub host_cores: usize,
    /// Closed-loop clients used for the request-count sweep.
    pub parallelism: usize,
    /// Worker threads used for the request-count sweep.
    pub workers: usize,
    /// One point per request count.
    pub points: Vec<LoadPoint>,
    /// Warm-cache throughput at increasing worker counts.
    pub scaling: Vec<ScalingPoint>,
}

/// The deterministic request mix: cycles the six workflows, three cluster
/// sizes, and eight tenants, with every fourth request a full `Run` and
/// the rest `Plan`. Pure in `i`, so every sweep point and worker count
/// replays the identical request stream.
pub fn request_mix(i: usize) -> PlanRequest {
    let workflow = WorkflowName::ALL[i % WorkflowName::ALL.len()];
    PlanRequest {
        tenant: format!("tenant-{}", i % 8),
        workflow,
        kind: if i % 4 == 3 {
            RequestKind::Run
        } else {
            RequestKind::Plan
        },
        nodes: [4, 8, 16][i % 3],
        // A fixed seed per workflow keeps the distinct-request set small
        // (and the cache effective), mirroring a service whose tenants
        // re-plan a stable portfolio of workflows.
        seed: 11,
    }
}

/// The number of consecutive `request_mix` indices that cover every
/// distinct (workflow, kind, nodes) shape: lcm(6, 4, 3).
pub const MIX_PERIOD: usize = 12;

/// Nearest-rank percentile (q in 0..=100) of an unsorted sample, in the
/// sample's own unit. Returns 0 for an empty sample.
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
    samples[rank.min(samples.len()) - 1]
}

/// Runs one closed-loop point and returns its measurements.
pub fn run_point(spec: &LoadTestSpec) -> LoadPoint {
    let service = PlanService::new(ServiceConfig {
        queue_depth: spec.queue_depth,
    });
    if spec.warm {
        // One of each distinct request shape, processed serially: all
        // profiling stages are cached before the clock starts.
        for i in 0..MIX_PERIOD.min(spec.requests) {
            let _ = service.submit(request_mix(i)).expect("warm-up admitted");
        }
        service.drain(1);
    }

    let workers = spec.workers.max(1);
    let parallelism = spec.parallelism.max(1);
    let handles = service.spawn_workers(workers);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(spec.requests));
    let refused = std::sync::atomic::AtomicUsize::new(0);
    let rejected = std::sync::atomic::AtomicUsize::new(0);

    let started = Instant::now(); // lint: allow(wall-clock)
    std::thread::scope(|scope| {
        for client in 0..parallelism {
            let service = &service;
            let latencies = &latencies;
            let refused = &refused;
            let rejected = &rejected;
            scope.spawn(move || {
                let mut mine = Vec::new();
                // Client c owns request indices c, c+P, c+2P, ...
                let mut i = client;
                while i < spec.requests {
                    let t0 = Instant::now(); // lint: allow(wall-clock)
                    match service.submit(request_mix(i)) {
                        Ok(ticket) => {
                            let reply = ticket.wait();
                            mine.push(t0.elapsed().as_secs_f64() * 1e3);
                            if reply.status != crate::service::ReplyStatus::Done {
                                refused.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            }
                        }
                        Err(_) => {
                            rejected.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        }
                    }
                    i += parallelism;
                }
                latencies.lock().expect("latency lock").extend(mine);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    service.shutdown();
    for h in handles {
        h.join().expect("worker exits");
    }

    let mut latencies = latencies.into_inner().expect("latency lock");
    let completed = latencies.len();
    let mean = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<f64>() / completed as f64
    };
    let stats: ServiceStats = service.stats();
    LoadPoint {
        requests: spec.requests,
        parallelism,
        workers,
        completed,
        refused: refused.into_inner(),
        rejected: rejected.into_inner(),
        elapsed_secs: elapsed,
        throughput_rps: if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        },
        p50_ms: percentile(&mut latencies, 50.0),
        p95_ms: percentile(&mut latencies, 95.0),
        p99_ms: percentile(&mut latencies, 99.0),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        mean_ms: mean,
        cache_hit_pct: {
            let (h, m) = (stats.cache.hits(), stats.cache.misses());
            if h + m == 0 {
                0.0
            } else {
                h as f64 * 100.0 / (h + m) as f64
            }
        },
    }
}

/// Runs the full sweep: one [`LoadPoint`] per entry of `request_counts`
/// (all at `parallelism` clients and `workers` workers), then — when
/// `with_scaling` is set — the worker-scaling series on a warm-cache mix.
pub fn run_sweep(
    request_counts: &[usize],
    parallelism: usize,
    workers: usize,
    with_scaling: bool,
) -> LoadTestReport {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let points = request_counts
        .iter()
        .map(|&requests| {
            run_point(&LoadTestSpec {
                requests,
                parallelism: parallelism.min(requests.max(1)),
                workers,
                queue_depth: 1024,
                warm: true,
            })
        })
        .collect();
    LoadTestReport {
        host_cores,
        parallelism,
        workers,
        points,
        scaling: if with_scaling {
            run_scaling(&[1, 2, 4, 8, 16])
        } else {
            Vec::new()
        },
    }
}

/// Measures warm-cache throughput at each worker count and normalizes to
/// the 1-worker run. On a machine with C cores, CPU-bound speedup
/// saturates near C — the report records `host_cores` so readers can
/// interpret the plateau.
pub fn run_scaling(worker_counts: &[usize]) -> Vec<ScalingPoint> {
    let requests = 192;
    let mut base_rps = 0.0;
    worker_counts
        .iter()
        .map(|&workers| {
            let point = run_point(&LoadTestSpec {
                requests,
                parallelism: 32,
                workers,
                queue_depth: 1024,
                warm: true,
            });
            if workers == worker_counts[0] {
                base_rps = point.throughput_rps;
            }
            ScalingPoint {
                workers,
                throughput_rps: point.throughput_rps,
                speedup: if base_rps > 0.0 {
                    point.throughput_rps / base_rps
                } else {
                    0.0
                },
            }
        })
        .collect()
}

impl LoadTestReport {
    /// Renders the sweep and scaling series as CSV (two sections).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "requests,parallelism,workers,completed,refused,rejected,\
             elapsed_secs,throughput_rps,p50_ms,p95_ms,p99_ms,max_ms,mean_ms,cache_hit_pct\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.2},{:.3},{:.3},{:.3},{:.3},{:.3},{:.1}\n",
                p.requests,
                p.parallelism,
                p.workers,
                p.completed,
                p.refused,
                p.rejected,
                p.elapsed_secs,
                p.throughput_rps,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.max_ms,
                p.mean_ms,
                p.cache_hit_pct
            ));
        }
        out.push_str("\nworkers,throughput_rps,speedup\n");
        for s in &self.scaling {
            out.push_str(&format!(
                "{},{:.2},{:.2}\n",
                s.workers, s.throughput_rps, s.speedup
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut s = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&mut s, 50.0), 20.0);
        assert_eq!(percentile(&mut s, 95.0), 40.0);
        assert_eq!(percentile(&mut s, 100.0), 40.0);
        assert_eq!(percentile(&mut s, 1.0), 10.0);
        let mut empty: Vec<f64> = Vec::new();
        assert_eq!(percentile(&mut empty, 50.0), 0.0);
    }

    #[test]
    fn request_mix_is_pure_and_covers_all_workflows() {
        for i in 0..MIX_PERIOD {
            assert_eq!(request_mix(i), request_mix(i));
        }
        let mut seen: Vec<&str> = Vec::new();
        for i in 0..MIX_PERIOD {
            let r = request_mix(i);
            let name = match r.workflow {
                WorkflowName::Genome1000 => "g",
                WorkflowName::SraSearch => "s",
                WorkflowName::Epigenomics => "e",
                WorkflowName::SyntheticSmall => "ss",
                WorkflowName::SyntheticMedium => "sm",
                WorkflowName::SyntheticLarge => "sl",
            };
            if !seen.contains(&name) {
                seen.push(name);
            }
        }
        assert_eq!(seen.len(), 6);
        // Both kinds appear within one period.
        assert!((0..MIX_PERIOD).any(|i| request_mix(i).kind == RequestKind::Run));
        assert!((0..MIX_PERIOD).any(|i| request_mix(i).kind == RequestKind::Plan));
    }

    #[test]
    fn a_small_closed_loop_point_completes_every_request() {
        let point = run_point(&LoadTestSpec {
            requests: 8,
            parallelism: 4,
            workers: 2,
            queue_depth: 64,
            warm: true,
        });
        assert_eq!(point.completed, 8);
        assert_eq!(point.refused, 0);
        assert_eq!(point.rejected, 0);
        assert!(point.throughput_rps > 0.0);
        assert!(point.p50_ms <= point.p95_ms && point.p95_ms <= point.p99_ms);
        assert!(point.cache_hit_pct > 0.0, "warm-up must populate the cache");
    }
}
