//! The shared worker pool: run independent engine executions on N threads.
//!
//! Every unit of work the workspace parallelizes — a figure-sweep scenario,
//! a planning-service request — is one *whole* simulated run. Runs are
//! internally single-threaded and deterministic (seeded event queue), and
//! since the `Rc<RefCell<..>>` → [`mashup_sim::Shared`] migration they are
//! `Send`, so the natural parallelism is one run per worker thread with no
//! synchronization inside a run.
//!
//! [`par_map`] farms a work list over `std::thread::scope` workers and
//! returns results **in input order**, so output is byte-identical whatever
//! the worker count: determinism lives inside each run and the merge order
//! is fixed by the caller's list. The figure sweep (`mashup-bench`) and the
//! planning service (`crate::service`) both sit on this module, which keeps
//! one execution path to test and tune.
//!
//! The worker count comes from [`set_jobs`] (the figures binary's
//! `--jobs N`); `0` means one worker per available core.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override: 0 = auto (one per available core).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the pool worker count. `0` restores auto (one per core).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective pool worker count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Runs `f` over `items` on up to [`jobs`] worker threads and returns the
/// results in input order. Falls back to a plain serial map when one worker
/// (or one item) makes threading pointless. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_items = items.len();
    let n_workers = jobs().min(n_items);
    if n_workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items parked in slots so idle workers can claim strictly by index;
    // the index also keys the deterministic merge below.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let next = &next;
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(n_items);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= slots.len() {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("slot lock")
                            .take()
                            .expect("each index is claimed exactly once");
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => collected.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global [`JOBS`] override —
    /// cargo runs tests in one binary concurrently, so an unguarded
    /// `set_jobs` would leak into sibling tests' `jobs()` reads. Restores
    /// auto mode on drop (panic included).
    struct JobsGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    impl JobsGuard {
        fn lock() -> Self {
            static LOCK: Mutex<()> = Mutex::new(());
            JobsGuard(LOCK.lock().unwrap_or_else(|e| e.into_inner()))
        }
    }

    impl Drop for JobsGuard {
        fn drop(&mut self) {
            set_jobs(0);
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        // Uneven per-item work so completion order differs from input order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(items, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_override_round_trips() {
        let _guard = JobsGuard::lock();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn empty_and_single_item_lists_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![5u32], |x| x + 1), vec![6]);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let _guard = JobsGuard::lock();
        let items: Vec<u64> = (0..40).collect();
        set_jobs(1);
        let serial = par_map(items.clone(), |i| i * i + 1);
        set_jobs(4);
        let parallel = par_map(items, |i| i * i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn whole_engine_runs_shard_across_workers() {
        // The motivating use: complete simulated runs on worker threads.
        use mashup_core::{Mashup, MashupConfig};
        let _guard = JobsGuard::lock();
        let w = mashup_workflows::generate(&mashup_workflows::SyntheticConfig::default(), 7);
        set_jobs(4);
        let reports = par_map(vec![2usize, 4, 8], |nodes| {
            Mashup::new(MashupConfig::aws(nodes)).run(&w).report
        });
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.makespan_secs > 0.0);
        }
    }
}
