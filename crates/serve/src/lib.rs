//! # mashup-serve
//!
//! The serving layer over the Mashup engine: a multi-tenant planning
//! service with admission control, the shared worker pool it and the
//! figure sweep run on, and a closed-loop load-test harness.
//!
//! The `Rc<RefCell<..>>` → [`mashup_sim::Shared`] migration made whole
//! engine runs `Send`; this crate is what that buys:
//!
//! * [`pool`] — [`par_map`]: shard independent deterministic runs across
//!   worker threads, merging results in input order (`mashup-bench`'s
//!   figure sweep delegates here);
//! * [`service`] — [`PlanService`]: JSON plan/run requests from many
//!   tenants, one shared [`PlanCache`] across all of them, a bounded
//!   [`FairQueue`] that rejects past its depth limit (HTTP-429 analogue)
//!   and round-robins across tenants;
//! * [`loadtest`] — [`run_sweep`]: closed-loop clients measuring
//!   throughput and p50/p95/p99 latency (`results/BENCH_serve.json`).
//!
//! [`PlanCache`]: mashup_core::PlanCache

#![warn(missing_docs)]

pub mod loadtest;
pub mod pareto;
pub mod pool;
pub mod service;

pub use loadtest::{
    percentile, request_mix, run_point, run_scaling, run_sweep, LoadPoint, LoadTestReport,
    LoadTestSpec, ScalingPoint, MIX_PERIOD,
};
pub use pareto::{pareto_sweep, pareto_sweep_with, FrontPoint, SweepOutcome, SweepStats};
pub use pool::{jobs, par_map, set_jobs};
pub use service::{
    FairQueue, PlanRequest, PlanService, Rejection, ReplyStatus, RequestKind, ServeReply,
    ServiceConfig, ServiceStats, Ticket, WorkflowName,
};
