//! The multi-tenant planning service.
//!
//! [`PlanService`] turns the engine into a shared facility: JSON
//! [`PlanRequest`]s in, [`ServeReply`]s out, with one [`PlanCache`] shared
//! across every tenant so profiling work done for one request is reused by
//! all later requests with the same content fingerprints. The service is
//! the serving-side counterpart of the figure sweep: both shard *whole*
//! deterministic engine runs across worker threads (see [`crate::pool`]),
//! so a reply is a pure function of its request — bit-identical at any
//! worker count.
//!
//! # Admission control
//!
//! Requests pass through a bounded [`FairQueue`]. When the total queued
//! work reaches the configured depth, [`PlanService::submit`] refuses with
//! [`Rejection::QueueFull`] — the HTTP-429 analogue — instead of letting
//! latency grow without bound. Dequeue order is round-robin across tenants
//! (each tenant has its own FIFO lane), so a tenant that floods the queue
//! delays its own backlog, not everyone else's.
//!
//! # Execution modes
//!
//! * [`PlanService::spawn_workers`] — persistent worker threads for live
//!   serving (`mashup serve`, the load-test harness); blocked on a condvar
//!   while idle, released by [`PlanService::shutdown`].
//! * [`PlanService::drain`] — batch mode: scoped workers process the
//!   backlog until dry, then return. Used by tests (deterministic, no
//!   teardown bookkeeping) and one-shot batch clients.

use mashup_core::{CacheStats, Mashup, MashupConfig, Pdc, PlanCache};
use mashup_dag::{Platform, Workflow};
use mashup_workflows::{generate, SyntheticConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The workflows the service can plan or run. Unit variants serialize as
/// their bare names, so a JSON request says `"workflow": "Genome1000"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkflowName {
    /// The paper's 1000Genome workflow (5 tasks, 2506 components).
    Genome1000,
    /// The paper's SRAsearch workflow (5 tasks, 404 components).
    SraSearch,
    /// The paper's Epigenomics workflow (9 tasks, 2007 components).
    Epigenomics,
    /// Synthetic generator, small preset (3 phases, narrow tasks).
    SyntheticSmall,
    /// Synthetic generator, default preset.
    SyntheticMedium,
    /// Synthetic generator, large preset (6 phases, wide tasks).
    SyntheticLarge,
}

impl WorkflowName {
    /// All request-able workflows, paper order then synthetic presets.
    pub const ALL: [WorkflowName; 6] = [
        WorkflowName::Genome1000,
        WorkflowName::SraSearch,
        WorkflowName::Epigenomics,
        WorkflowName::SyntheticSmall,
        WorkflowName::SyntheticMedium,
        WorkflowName::SyntheticLarge,
    ];

    /// Materializes the workflow. `seed` feeds the synthetic generator and
    /// is ignored by the (fixed) paper workflows.
    pub fn build(self, seed: u64) -> Workflow {
        match self {
            WorkflowName::Genome1000 => mashup_workflows::genome1000::workflow(),
            WorkflowName::SraSearch => mashup_workflows::srasearch::workflow(),
            WorkflowName::Epigenomics => mashup_workflows::epigenomics::workflow(),
            WorkflowName::SyntheticSmall => generate(
                &SyntheticConfig {
                    phases: 3,
                    tasks_per_phase: (1, 2),
                    component_choices: vec![1, 4, 16],
                    compute_secs: (5.0, 60.0),
                    io_bytes: (1.0e6, 5.0e7),
                    slowdown: (0.8, 1.6),
                    recurring_prob: 0.0,
                },
                seed,
            ),
            WorkflowName::SyntheticMedium => generate(&SyntheticConfig::default(), seed),
            WorkflowName::SyntheticLarge => generate(
                &SyntheticConfig {
                    phases: 6,
                    tasks_per_phase: (2, 4),
                    component_choices: vec![8, 64, 256, 512],
                    compute_secs: (10.0, 240.0),
                    io_bytes: (1.0e7, 1.0e9),
                    slowdown: (0.7, 2.0),
                    recurring_prob: 0.2,
                },
                seed,
            ),
        }
    }
}

/// What the tenant wants done with the workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// PDC profiling + decision only: returns the placement.
    Plan,
    /// Full pipeline: PDC then hybrid execution; returns the report
    /// summary.
    Run,
}

/// One tenant request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Tenant identity — the fairness unit for queue admission.
    pub tenant: String,
    /// Which workflow to plan or run.
    pub workflow: WorkflowName,
    /// Plan only, or plan + execute.
    pub kind: RequestKind,
    /// VM cluster size to plan against.
    pub nodes: usize,
    /// Synthetic-generator seed (ignored for paper workflows).
    pub seed: u64,
}

/// Reply status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplyStatus {
    /// The request executed; the numeric fields are meaningful.
    Done,
    /// Static analysis refused the input; `detail` carries the reason.
    Refused,
}

/// The service's answer to one admitted request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReply {
    /// Ticket id (submission order).
    pub id: u64,
    /// Echo of the requesting tenant.
    pub tenant: String,
    /// Resolved workflow name.
    pub workflow: String,
    /// Outcome class.
    pub status: ReplyStatus,
    /// Production makespan in simulated seconds (0 for `Plan` requests).
    pub makespan_secs: f64,
    /// Production expense in dollars (0 for `Plan` requests).
    pub expense_dollars: f64,
    /// Profiling expense the PDC spent reaching its decision.
    pub profiling_expense_dollars: f64,
    /// Tasks the plan sends to serverless.
    pub serverless_tasks: usize,
    /// Tasks the plan keeps on the VM cluster.
    pub vm_tasks: usize,
    /// The sub-cluster split the PDC chose.
    pub subclusters: usize,
    /// Refusal reason when `status == Refused`, else empty.
    pub detail: String,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rejection {
    /// The bounded queue is at its depth limit — retry later (HTTP 429).
    QueueFull,
    /// [`PlanService::shutdown`] has been called — the service accepts no
    /// new work (HTTP 503).
    ShuttingDown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull => write!(f, "queue full"),
            Rejection::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// A bounded multi-tenant queue with round-robin dequeue.
///
/// Each tenant gets a FIFO lane; [`FairQueue::pop`] serves lanes in
/// round-robin order (alphabetical tenant order, resuming strictly after
/// the last-served tenant), so one tenant's backlog cannot starve another.
/// [`FairQueue::push`] refuses once the *total* queued count reaches the
/// depth limit.
#[derive(Debug)]
pub struct FairQueue<T> {
    lanes: BTreeMap<String, VecDeque<T>>,
    /// Tenant served last; `pop` resumes strictly after it (wrapping).
    cursor: Option<String>,
    depth: usize,
    len: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue admitting at most `depth` items in total.
    pub fn new(depth: usize) -> Self {
        FairQueue {
            lanes: BTreeMap::new(),
            cursor: None,
            depth,
            len: 0,
        }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `item` on `tenant`'s lane, refusing at the depth limit.
    pub fn push(&mut self, tenant: &str, item: T) -> Result<(), Rejection> {
        if self.len >= self.depth {
            return Err(Rejection::QueueFull);
        }
        self.lanes
            .entry(tenant.to_string())
            .or_default()
            .push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Dequeues the next item round-robin across tenants.
    pub fn pop(&mut self) -> Option<(String, T)> {
        use std::ops::Bound::{Excluded, Unbounded};
        if self.len == 0 {
            return None;
        }
        // First non-empty lane strictly after the cursor, wrapping to the
        // start. Lanes are removed when emptied, so any present lane is
        // non-empty.
        let key = match &self.cursor {
            Some(c) => self
                .lanes
                .range::<String, _>((Excluded(c), Unbounded))
                .map(|(k, _)| k.clone())
                .next(),
            None => None,
        }
        .or_else(|| self.lanes.keys().next().cloned())?;
        let lane = self.lanes.get_mut(&key).expect("lane exists");
        let item = lane.pop_front().expect("lanes are never empty");
        if lane.is_empty() {
            self.lanes.remove(&key);
        }
        self.len -= 1;
        self.cursor = Some(key.clone());
        Some((key, item))
    }
}

/// Service construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Maximum queued (admitted but unprocessed) requests.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { queue_depth: 1024 }
    }
}

/// Counters snapshot for observability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests refused at submission (queue full, shutting down).
    pub rejected: u64,
    /// Requests fully processed.
    pub completed: u64,
    /// Requests currently queued.
    pub queued: u64,
    /// The shared plan cache's counters.
    pub cache: CacheStats,
}

/// One admitted request waiting for (or holding) its reply.
struct Slot {
    reply: Mutex<Option<ServeReply>>,
    done: Condvar,
}

struct Job {
    id: u64,
    req: PlanRequest,
    slot: Arc<Slot>,
}

struct ServiceState {
    queue: FairQueue<Job>,
    open: bool,
}

/// The multi-tenant planning service. See the module docs.
pub struct PlanService {
    cache: Arc<PlanCache>,
    state: Mutex<ServiceState>,
    work: Condvar,
    next_id: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
}

/// A handle to one admitted request; [`Ticket::wait`] blocks until the
/// reply is ready.
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
}

impl Ticket {
    /// The request's ticket id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until a worker has produced the reply.
    pub fn wait(self) -> ServeReply {
        let mut guard = self.slot.reply.lock().expect("ticket lock");
        while guard.is_none() {
            guard = self.slot.done.wait(guard).expect("ticket condvar");
        }
        guard.take().expect("reply present")
    }
}

impl PlanService {
    /// A fresh service with its own empty [`PlanCache`].
    pub fn new(cfg: ServiceConfig) -> Arc<Self> {
        Self::with_cache(cfg, Arc::new(PlanCache::new()))
    }

    /// A service sharing an existing cache (e.g. pre-warmed, or shared with
    /// a sweep).
    pub fn with_cache(cfg: ServiceConfig, cache: Arc<PlanCache>) -> Arc<Self> {
        Arc::new(PlanService {
            cache,
            state: Mutex::new(ServiceState {
                queue: FairQueue::new(cfg.queue_depth),
                open: true,
            }),
            work: Condvar::new(),
            next_id: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        })
    }

    /// The shared plan cache.
    pub fn cache(&self) -> Arc<PlanCache> {
        self.cache.clone()
    }

    /// Admits `req` to the queue, returning a [`Ticket`] to wait on, or
    /// refuses with [`Rejection::QueueFull`] at the depth limit and
    /// [`Rejection::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(&self, req: PlanRequest) -> Result<Ticket, Rejection> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let slot = Arc::new(Slot {
            reply: Mutex::new(None),
            done: Condvar::new(),
        });
        let tenant = req.tenant.clone();
        let job = Job {
            id,
            req,
            slot: slot.clone(),
        };
        {
            let mut state = self.state.lock().expect("service lock");
            // Checked under the state lock: after `shutdown` flips `open`,
            // workers exit once the queue drains, so admitting here would
            // strand the job (its ticket would wait forever).
            if !state.open {
                self.rejected.fetch_add(1, Ordering::SeqCst);
                return Err(Rejection::ShuttingDown);
            }
            if let Err(e) = state.queue.push(&tenant, job) {
                self.rejected.fetch_add(1, Ordering::SeqCst);
                return Err(e);
            }
        }
        self.admitted.fetch_add(1, Ordering::SeqCst);
        self.work.notify_one();
        Ok(Ticket { id, slot })
    }

    /// Counters snapshot (queue length, admissions, the shared cache).
    pub fn stats(&self) -> ServiceStats {
        let queued = self.state.lock().expect("service lock").queue.len() as u64;
        ServiceStats {
            admitted: self.admitted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            queued,
            cache: self.cache.stats(),
        }
    }

    /// Starts `n` persistent worker threads. Each runs [`worker_loop`]
    /// until [`PlanService::shutdown`]; join the returned handles after
    /// shutting down.
    ///
    /// [`worker_loop`]: PlanService::worker_loop
    pub fn spawn_workers(self: &Arc<Self>, n: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..n.max(1))
            .map(|_| {
                let service = self.clone();
                std::thread::spawn(move || service.worker_loop())
            })
            .collect()
    }

    /// Serves jobs until the service is shut down *and* the queue is dry
    /// (a shutdown never drops admitted work).
    pub fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("service lock");
                loop {
                    if let Some((_, job)) = state.queue.pop() {
                        break job;
                    }
                    if !state.open {
                        return;
                    }
                    state = self.work.wait(state).expect("service condvar");
                }
            };
            self.process(job);
        }
    }

    /// Stops the worker loops once the backlog drains.
    pub fn shutdown(&self) {
        self.state.lock().expect("service lock").open = false;
        self.work.notify_all();
    }

    /// Batch mode: processes everything currently queued on `workers`
    /// scoped threads and returns when the queue is dry. Does not disturb
    /// persistent workers (they just race for the same jobs).
    pub fn drain(&self, workers: usize) {
        let workers = workers.max(1);
        if workers == 1 {
            while let Some(job) = self.try_pop() {
                self.process(job);
            }
            return;
        }
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(job) = self.try_pop() {
                        self.process(job);
                    }
                });
            }
        });
    }

    fn try_pop(&self) -> Option<Job> {
        self.state
            .lock()
            .expect("service lock")
            .queue
            .pop()
            .map(|(_, job)| job)
    }

    fn process(&self, job: Job) {
        // A panicking request (an engine bug, a borrow-conflict panic) must
        // still produce a reply: the client is blocked in `Ticket::wait` and
        // a silently-dead worker would strand it forever. The panic is
        // converted to a `Refused` reply and the worker keeps serving.
        let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_request(job.id, &job.req, &self.cache)
        }))
        .unwrap_or_else(|panic| ServeReply {
            id: job.id,
            tenant: job.req.tenant.clone(),
            workflow: format!("{:?}", job.req.workflow),
            status: ReplyStatus::Refused,
            makespan_secs: 0.0,
            expense_dollars: 0.0,
            profiling_expense_dollars: 0.0,
            serverless_tasks: 0,
            vm_tasks: 0,
            subclusters: 0,
            detail: format!("worker panicked: {}", panic_message(&*panic)),
        });
        self.completed.fetch_add(1, Ordering::SeqCst);
        let mut guard = job.slot.reply.lock().expect("ticket lock");
        *guard = Some(reply);
        job.slot.done.notify_all();
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes one request against the engine. Pure in the request: the
/// engine is seed-deterministic and the shared cache is memoization-pure,
/// so the reply is identical whichever worker runs it, cache warm or cold.
fn execute_request(id: u64, req: &PlanRequest, cache: &Arc<PlanCache>) -> ServeReply {
    // Deterministic fault injection for the worker-panic tests: engine
    // panics cannot be provoked through the public API (by design), so the
    // test binary smuggles one in via a reserved tenant name.
    #[cfg(test)]
    if req.tenant == "__panic" {
        panic!("injected test panic");
    }
    let workflow = req.workflow.build(req.seed);
    let cfg = MashupConfig::aws(req.nodes.max(1));
    let base = ServeReply {
        id,
        tenant: req.tenant.clone(),
        workflow: workflow.name.clone(),
        status: ReplyStatus::Done,
        makespan_secs: 0.0,
        expense_dollars: 0.0,
        profiling_expense_dollars: 0.0,
        serverless_tasks: 0,
        vm_tasks: 0,
        subclusters: 0,
        detail: String::new(),
    };
    match req.kind {
        RequestKind::Plan => match Pdc::new(cfg)
            .with_cache(cache.clone())
            .try_decide(&workflow)
        {
            Ok(pdc) => ServeReply {
                profiling_expense_dollars: pdc.profiling_expense.total(),
                serverless_tasks: pdc.plan.count(Platform::Serverless),
                vm_tasks: pdc.plan.count(Platform::VmCluster),
                subclusters: pdc.subclusters,
                ..base
            },
            Err(e) => ServeReply {
                status: ReplyStatus::Refused,
                detail: e.to_string(),
                ..base
            },
        },
        RequestKind::Run => match Mashup::new(cfg)
            .with_cache(cache.clone())
            .try_run(&workflow)
        {
            Ok(outcome) => ServeReply {
                makespan_secs: outcome.report.makespan_secs,
                expense_dollars: outcome.report.expense.total(),
                profiling_expense_dollars: outcome.pdc.profiling_expense.total(),
                serverless_tasks: outcome.report.plan.count(Platform::Serverless),
                vm_tasks: outcome.report.plan.count(Platform::VmCluster),
                subclusters: outcome.pdc.subclusters,
                ..base
            },
            Err(e) => ServeReply {
                status: ReplyStatus::Refused,
                detail: e.to_string(),
                ..base
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tenant: &str, i: usize) -> PlanRequest {
        PlanRequest {
            tenant: tenant.into(),
            workflow: WorkflowName::SyntheticSmall,
            kind: RequestKind::Plan,
            nodes: 4,
            seed: i as u64,
        }
    }

    #[test]
    fn fair_queue_rejects_past_its_depth() {
        let mut q = FairQueue::new(2);
        assert!(q.push("a", 1).is_ok());
        assert!(q.push("b", 2).is_ok());
        assert_eq!(q.push("a", 3), Err(Rejection::QueueFull));
        assert_eq!(q.len(), 2);
        // Draining reopens admission.
        q.pop().expect("item");
        assert!(q.push("c", 4).is_ok());
    }

    #[test]
    fn fair_queue_round_robins_across_tenants() {
        let mut q = FairQueue::new(16);
        // Hog tenant "a" enqueues 4 before "b" and "c" get 1 each.
        for i in 0..4 {
            q.push("a", ("a", i)).expect("admitted");
        }
        q.push("b", ("b", 0)).expect("admitted");
        q.push("c", ("c", 0)).expect("admitted");
        let order: Vec<(&str, usize)> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        // b and c each get served within the first cycle; the hog's
        // backlog fills the tail.
        assert_eq!(
            order,
            vec![("a", 0), ("b", 0), ("c", 0), ("a", 1), ("a", 2), ("a", 3)]
        );
    }

    #[test]
    fn fair_queue_resumes_after_removed_cursor_lane() {
        let mut q = FairQueue::new(16);
        q.push("a", 1).expect("admitted");
        q.push("c", 3).expect("admitted");
        // Serving "a" empties and removes its lane; the cursor still
        // resolves to the next tenant after "a".
        assert_eq!(q.pop(), Some(("a".to_string(), 1)));
        q.push("b", 2).expect("admitted");
        assert_eq!(q.pop(), Some(("b".to_string(), 2)));
        assert_eq!(q.pop(), Some(("c".to_string(), 3)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn fair_queue_is_fifo_within_a_tenant() {
        let mut q = FairQueue::new(8);
        for i in 0..5 {
            q.push("only", i).expect("admitted");
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn service_rejects_at_queue_depth_and_recovers_after_drain() {
        let service = PlanService::new(ServiceConfig { queue_depth: 3 });
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| service.submit(req("t", i)).expect("admitted"))
            .collect();
        assert!(matches!(
            service.submit(req("t", 9)),
            Err(Rejection::QueueFull)
        ));
        let stats = service.stats();
        assert_eq!((stats.admitted, stats.rejected, stats.queued), (3, 1, 3));
        service.drain(1);
        for t in tickets {
            assert_eq!(t.wait().status, ReplyStatus::Done);
        }
        assert!(service.submit(req("t", 10)).is_ok());
        service.drain(1);
        assert_eq!(service.stats().completed, 4);
    }

    #[test]
    fn plan_and_run_replies_are_consistent() {
        let service = PlanService::new(ServiceConfig::default());
        let plan = service.submit(req("t", 1)).expect("admitted");
        let run = service
            .submit(PlanRequest {
                kind: RequestKind::Run,
                ..req("t", 1)
            })
            .expect("admitted");
        service.drain(2);
        let plan = plan.wait();
        let run = run.wait();
        // Same workflow + cluster: the run executes the plan's placement.
        assert_eq!(plan.serverless_tasks, run.serverless_tasks);
        assert_eq!(plan.vm_tasks, run.vm_tasks);
        assert_eq!(plan.subclusters, run.subclusters);
        assert_eq!(plan.makespan_secs, 0.0);
        assert!(run.makespan_secs > 0.0);
    }

    #[test]
    fn persistent_workers_serve_and_shut_down() {
        let service = PlanService::new(ServiceConfig::default());
        let handles = service.spawn_workers(2);
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| service.submit(req(["a", "b"][i % 2], i)).expect("admitted"))
            .collect();
        for t in tickets {
            assert_eq!(t.wait().status, ReplyStatus::Done);
        }
        service.shutdown();
        for h in handles {
            h.join().expect("worker exits");
        }
        assert_eq!(service.stats().completed, 6);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let service = PlanService::new(ServiceConfig::default());
        let admitted = service.submit(req("t", 0)).expect("admitted");
        service.shutdown();
        assert_eq!(
            service.submit(req("t", 1)).map(|t| t.id()),
            Err(Rejection::ShuttingDown)
        );
        // Work admitted before the shutdown still completes.
        service.drain(1);
        assert_eq!(admitted.wait().status, ReplyStatus::Done);
        let stats = service.stats();
        assert_eq!((stats.admitted, stats.rejected, stats.completed), (1, 1, 1));
    }

    #[test]
    fn panicking_request_still_answers_its_ticket() {
        let service = PlanService::new(ServiceConfig::default());
        let bad = service.submit(req("__panic", 0)).expect("admitted");
        service.drain(1);
        let reply = bad.wait();
        assert_eq!(reply.status, ReplyStatus::Refused);
        assert!(
            reply.detail.contains("injected test panic"),
            "detail carries the panic message: {}",
            reply.detail
        );
    }

    #[test]
    fn worker_survives_a_panicking_request() {
        let service = PlanService::new(ServiceConfig::default());
        let handles = service.spawn_workers(1);
        let bad = service.submit(req("__panic", 0)).expect("admitted");
        let good = service.submit(req("t", 1)).expect("admitted");
        // The single worker must outlive the panic to serve the second job.
        assert_eq!(bad.wait().status, ReplyStatus::Refused);
        assert_eq!(good.wait().status, ReplyStatus::Done);
        service.shutdown();
        for h in handles {
            h.join().expect("worker exits cleanly");
        }
        assert_eq!(service.stats().completed, 2);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let r = req("tenant-1", 5);
        let json = serde_json::to_string(&r).expect("serialize");
        let back: PlanRequest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(r, back);
    }
}
