//! Worker-count determinism: the same request batch must produce
//! bit-identical replies — and consistent plan-cache totals — whether the
//! service drains it on 1, 4, or 16 workers.
//!
//! Two mixes pin down the two cache regimes:
//!
//! * **cold** — a fresh cache per run. Replies are pure functions of their
//!   requests, so they cannot depend on scheduling; cache *lookup* and
//!   *entry* totals are also exact (identical racing keys can split a
//!   hit/miss differently, but total lookups and first-insert-wins entry
//!   counts cannot move).
//! * **warm** — the same batch after a serial pre-warm pass. Every lookup
//!   is a hit, so the full hit/miss split is exact at any worker count.

use mashup_serve::{request_mix, PlanService, ServeReply, ServiceConfig, Ticket, MIX_PERIOD};

const WORKER_COUNTS: [usize; 3] = [1, 4, 16];

/// Two full mix periods: every distinct request shape appears twice, so
/// cross-request cache reuse is in play even in the cold runs.
fn batch() -> Vec<mashup_serve::PlanRequest> {
    (0..2 * MIX_PERIOD).map(request_mix).collect()
}

fn drain_batch(service: &std::sync::Arc<PlanService>, workers: usize) -> Vec<ServeReply> {
    let tickets: Vec<Ticket> = batch()
        .into_iter()
        .map(|r| service.submit(r).expect("admitted"))
        .collect();
    service.drain(workers);
    tickets.into_iter().map(Ticket::wait).collect()
}

#[test]
fn cold_batches_are_bit_identical_across_worker_counts() {
    let mut serialized: Vec<String> = Vec::new();
    let mut totals: Vec<(u64, u64)> = Vec::new();
    for workers in WORKER_COUNTS {
        let service = PlanService::new(ServiceConfig::default());
        let replies = drain_batch(&service, workers);
        serialized.push(serde_json::to_string(&replies).expect("serialize"));
        let stats = service.stats().cache;
        totals.push((stats.hits() + stats.misses(), stats.entries()));
    }
    assert_eq!(serialized[0], serialized[1]);
    assert_eq!(serialized[0], serialized[2]);
    assert_eq!(totals[0], totals[1], "cache lookup/entry totals moved");
    assert_eq!(totals[0], totals[2], "cache lookup/entry totals moved");
}

#[test]
fn warm_batches_are_bit_identical_and_all_hits_across_worker_counts() {
    let mut serialized: Vec<String> = Vec::new();
    let mut deltas: Vec<(u64, u64)> = Vec::new();
    for workers in WORKER_COUNTS {
        let service = PlanService::new(ServiceConfig::default());
        // Serial pre-warm: one deterministic pass fills every cache key.
        drain_batch(&service, 1);
        let before = service.stats().cache;
        let replies = drain_batch(&service, workers);
        serialized.push(serde_json::to_string(&replies).expect("serialize"));
        let after = service.stats().cache;
        deltas.push((
            after.hits() - before.hits(),
            after.misses() - before.misses(),
        ));
    }
    assert_eq!(serialized[0], serialized[1]);
    assert_eq!(serialized[0], serialized[2]);
    for (i, &(hits, misses)) in deltas.iter().enumerate() {
        assert_eq!(misses, 0, "warm run {i} missed the cache");
        assert_eq!(hits, deltas[0].0, "warm run {i} hit count moved");
    }
}

#[test]
fn warm_and_cold_replies_agree() {
    // Memoization purity end-to-end: caching must never change an answer.
    let cold = PlanService::new(ServiceConfig::default());
    let warm = PlanService::new(ServiceConfig::default());
    drain_batch(&warm, 1); // pre-warm

    // Ticket ids count from service birth, so the warm service's second
    // batch is offset; zero them out — everything else must match.
    let strip = |mut replies: Vec<ServeReply>| {
        for r in &mut replies {
            r.id = 0;
        }
        serde_json::to_string(&replies).expect("serialize")
    };
    let cold_replies = strip(drain_batch(&cold, 4));
    let warm_replies = strip(drain_batch(&warm, 4));
    assert_eq!(cold_replies, warm_replies);
}
