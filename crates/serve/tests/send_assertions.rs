//! Compile-time `Send` assertions for the engine's entry points.
//!
//! The planning service and the figure sweep both move *whole* engine
//! worlds onto worker threads, which is only sound while every type in the
//! execution stack stays `Send`. A reintroduced `Rc`, `RefCell`, or
//! non-`Send` trait object anywhere in the state graph turns these into
//! compile errors pointing at the offending type — much earlier and
//! clearer than a trait-bound error three layers up in `par_map`.

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_entry_points_are_send() {
    // The simulation substrate and its flight recorder.
    assert_send::<mashup_sim::Simulation>();
    assert_send::<mashup_sim::Tracer>();
    assert_send::<mashup_sim::Shared<Vec<u64>>>();

    // The simulated cloud substrates.
    assert_send::<mashup_cloud::VmCluster>();
    assert_send::<mashup_cloud::FaasPlatform>();
    assert_send::<mashup_cloud::ObjectStore>();
    assert_send::<mashup_cloud::CostMeter>();

    // The engine facade and its environment.
    assert_send::<mashup_core::CloudEnv>();
    assert_send::<mashup_core::Mashup>();
    assert_send::<mashup_core::Pdc>();
    assert_send::<mashup_core::MashupOutcome>();
    assert_send::<mashup_core::WorkflowReport>();
}

#[test]
fn shared_serving_state_is_send_and_sync() {
    // Genuinely-shared state must also be Sync: one instance, many
    // threads.
    assert_send_sync::<mashup_core::PlanCache>();
    assert_send_sync::<mashup_serve::PlanService>();
    assert_send::<mashup_serve::Ticket>();
}
