// expect: guard-across-pool
//! Seeded corruption: a guard held across a worker-pool call. Every
//! worker that touches the same cell races the held borrow and panics at
//! first contention.

pub fn fan_out(w: &World, items: Vec<Task>) -> Vec<Done> {
    let plan = w.plan.borrow();
    par_map(items, move |t| run(plan.step(t)))
}
