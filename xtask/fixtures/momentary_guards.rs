// expect: clean
//! The blessed shapes: momentary guards one statement at a time,
//! block-scoped guards released before the next borrow, explicit drop,
//! independent match arms, and closures as separate contexts. None of
//! these overlap at runtime, and the analyzer must stay silent.

pub fn momentary_sequence(c: &Shared<Plan>) -> usize {
    c.borrow_mut().push(1);
    c.borrow_mut().push(2);
    let n = c.borrow().len();
    n
}

pub fn block_scoped_then_reborrow(c: &Shared<Plan>) {
    {
        let mut g = c.borrow_mut();
        g.push(1);
    }
    let snapshot = c.borrow().clone();
    use_it(snapshot);
}

pub fn explicit_drop(c: &Shared<Plan>) {
    let g = c.borrow_mut();
    drop(g);
    let again = c.borrow();
    use_it(again.len());
}

pub fn arms_are_independent(c: &Shared<Plan>, k: Kind) -> u32 {
    match k {
        Kind::Read => c.borrow().total(),
        Kind::Reset => c.borrow_mut().reset(),
    }
}

pub fn condition_temps_die_before_the_body(c: &Shared<Plan>) {
    if c.borrow().ready() {
        c.borrow_mut().fire();
    }
    while c.borrow().pending() > 0 {
        c.borrow_mut().step();
    }
}

pub fn distinct_cells_in_one_consistent_order(w: &World) {
    let links = w.links.borrow_mut();
    let hot = w.state.borrow().hot();
    links.mark(hot);
}

pub fn closures_run_later(c: &Shared<Plan>, sim: &mut Sim) {
    let g = c.borrow();
    sim.schedule(move |world| world.plan.borrow_mut().advance());
    use_it(g.len());
}
