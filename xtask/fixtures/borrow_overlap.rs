// expect: borrow-overlap
//! Seeded corruption: two live guards on one `Shared` cell. The second
//! borrow panics at runtime ("already mutably borrowed") — the lint must
//! catch it statically. Fixtures are analyzed, never compiled.

pub fn double_read(w: &World) -> u32 {
    let first = w.state.borrow_mut();
    let second = w.state.borrow();
    first.total + second.total
}

pub fn chained_in_one_statement(w: &World) -> u32 {
    w.state.borrow().lo + w.state.borrow().hi
}
