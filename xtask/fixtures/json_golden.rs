// expect: wall-clock, adhoc-telemetry, borrow-overlap
//! Golden input for the `--json` report format: a small, fixed set of
//! violations (two rules on one line, plus a borrow rule, plus text that
//! needs escaping) rendered against `json_golden.expected.json`
//! byte-for-byte.

pub fn report(c: &Shared<Plan>) {
    println!("t = {:?} \"quoted\"", std::time::Instant::now());
    let g = c.borrow_mut();
    let h = c.borrow();
    observe(g.len() + h.len());
}
