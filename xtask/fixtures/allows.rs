// expect: clean
//! Every rule family suppressed by a justified escape: same-line allows,
//! preceding-line allows, the file-scoped form, and allows on each of the
//! three borrow rules. The analyzer must honor all of them.

// This fixture's prints model a CLI surface; lint: allow-file(adhoc-telemetry)

use std::collections::HashMap; // keyed lookups only, never iterated; lint: allow(hash-collections)

pub fn justified_determinism_escapes() {
    // measuring the host, not the simulation; lint: allow(wall-clock)
    let t0 = std::time::Instant::now();
    // seeding an ephemeral shuffle for a demo; lint: allow(ambient-rng)
    let r = thread_rng().gen::<u64>();
    // single-threaded visualization scratch; lint: allow(no-rc)
    let scratch = Rc::new(Vec::<u64>::new());
    println!("demo {r} {:?} {}", t0.elapsed(), scratch.len());
    eprintln!("done");
}

pub fn seeded_panic_test_overlap(c: &Shared<Plan>) {
    let first = c.borrow_mut();
    // intentional double borrow exercising the panic path; lint: allow(borrow-overlap)
    let second = c.borrow();
    observe(first.len() + second.len());
}

pub fn audited_nesting_one_way(&self) {
    let cache = self.cache.borrow_mut();
    let depth = self.queue.borrow().len();
    cache.reserve(depth);
}

pub fn audited_nesting_other_way(&self) {
    let queue = self.queue.borrow_mut();
    // never contends: only called from the single-threaded builder; lint: allow(borrow-order)
    let live = self.cache.borrow().live();
    queue.retain(|t| live.contains(t));
}

pub fn guard_is_read_only_setup(w: &World, items: Vec<Task>) {
    let plan = w.plan.borrow();
    // workers never touch w.plan, only their own shards; lint: allow(guard-across-pool)
    par_map(items, move |t| shard(&plan, t));
}
