// expect: borrow-order
//! Seeded corruption: two cells nested in opposite orders in different
//! functions. Under concurrent contention (the planning service's worker
//! threads) the interleaving panics at the inner borrow. Each nesting is
//! fine alone — only the crate-level union exposes the cycle.

pub fn charge(&self) {
    let cache = self.cache.borrow_mut();
    let depth = self.queue.borrow().len();
    cache.reserve(depth);
}

pub fn drain(&self) {
    let queue = self.queue.borrow_mut();
    let live = self.cache.borrow().live();
    queue.retain(|t| live.contains(t));
}
