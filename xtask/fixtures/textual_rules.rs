// expect: wall-clock, hash-collections, ambient-rng, adhoc-telemetry, no-rc
//! Seeded corruption for all five determinism rules as real code (not
//! prose): each construct below must flag.

use std::collections::HashMap;
use std::rc::Rc;

pub fn nondeterministic_soup() {
    let t0 = std::time::Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(0, thread_rng().gen());
    let shared = Rc::new(m);
    println!("elapsed {:?} entries {}", t0.elapsed(), shared.len());
    dbg!(&shared);
}
