// expect: clean
//! Regression fixture for the old substring matcher's false-positive
//! class: rule patterns inside string literals, comments, doc prose, raw
//! strings, and `#[doc = ".."]` attributes must never flag. Every line
//! below mentions at least one banned construct — as text, not code.

/// Uses a HashMap internally? No — but this doc line says HashMap and
/// Instant::now, and once upon a time `println!("x")` needed an allow.
pub fn prose_only() -> &'static str {
    let plain = "HashMap Instant::now println! Rc::new( thread_rng";
    let raw = r#"SystemTime::now " OsRng " dbg!"#;
    let formatted = format!("{plain} HashSet rand::random {raw}");
    /* block comment: eprintln!("warn") and from_entropy() are fine here,
    even spanning lines with std::rc::Rc mentioned. */
    let matcher = "strings_do_not_flag";
    assert_ne!(formatted, matcher);
    matcher
}

#[doc = "attribute doc text: HashMap, Instant::now, println! all inert"]
pub struct ProseHolder {
    pub note: &'static str,
}

// Identifiers that merely *contain* a pattern must not flag either.
pub fn dbg_helper_for_printlnish_hashmaplike() {}
