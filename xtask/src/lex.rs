//! A minimal Rust lexer for the lint's static analysis.
//!
//! The workspace builds fully offline, so no `syn`/`proc-macro2`: this is
//! a hand-rolled token scanner that is exactly as smart as the lint needs
//! to be. It produces a flat token stream with **string literals, character
//! literals, comments, and attributes stripped** — so a rule pattern can
//! never fire inside prose, doc examples, or `#[doc = ".."]` text — while
//! preserving line numbers for reporting and recording every
//! `lint: allow(..)` / `lint: allow-file(..)` escape found in a comment.
//!
//! What it understands:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string-ish literals: `"..."` (with escapes), raw strings `r".."` /
//!   `r#".."#` (any hash count), byte/byte-raw strings, C strings, and
//!   char literals vs. lifetimes (`'a'` vs `'a`);
//! * raw identifiers (`r#fn` lexes as the identifier `fn`);
//! * attributes `#[..]` / `#![..]`, skipped with balanced brackets and
//!   string awareness;
//! * multi-char operators the analyses care about: `::`, `->`, `=>`,
//!   `||`, `&&` (everything else is single-char punctuation).
//!
//! It does **not** build an AST; `scopes` and `borrows` layer a brace
//! tracker and a borrow-graph walk on top of the flat stream.

/// Token classification — just enough to tell identifiers from the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation / operator (possibly multi-char: `::`, `->`, `=>`,
    /// `||`, `&&`).
    Punct,
    /// String, byte-string, C-string, or char literal. The text is not
    /// retained — literal contents must never match a rule.
    Literal,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`). Text excludes the quote.
    Life,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

/// One `lint: allow(..)` escape found in a comment.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowMark {
    /// 1-based line the marker text appears on.
    pub line: u32,
    /// Rule name inside the parentheses.
    pub rule: String,
    /// `true` for the `lint: allow-file(..)` form, which exempts the
    /// whole file from the rule.
    pub file_scope: bool,
}

/// Lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowMark>,
}

/// Records every allow marker contained in `comment` (one comment's text,
/// single line) at line `line`.
fn scan_allow_marks(comment: &str, line: u32, out: &mut Vec<AllowMark>) {
    for (needle, file_scope) in [("lint: allow-file(", true), ("lint: allow(", false)] {
        let mut rest = comment;
        while let Some(pos) = rest.find(needle) {
            let after = &rest[pos + needle.len()..];
            if let Some(close) = after.find(')') {
                let rule = after[..close].trim().to_string();
                // `lint: allow-file(x)` also contains the substring
                // `lint: allow(..)`? No — "allow-file(" vs "allow(" differ
                // before the paren, so each marker matches exactly one form.
                if !rule.is_empty() {
                    out.push(AllowMark {
                        line,
                        rule,
                        file_scope,
                    });
                }
                rest = &after[close..];
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Skips a `"..."` body starting just after the opening quote; returns the
/// index just past the closing quote. Tracks newlines.
fn skip_plain_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A `\` line continuation swallows the newline — which
                // still has to count, or every line after the string
                // drifts.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string `r##"..."##` body. `i` points at the first `#` or the
/// opening quote; returns the index just past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while j < b.len() && seen < hashes && b[j] == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            if b[i] == b'\n' {
                *line += 1;
            }
            i += 1;
        }
    }
    i
}

/// Skips an attribute body starting at the opening `[`; returns the index
/// just past the matching `]`. Strings inside the attribute (e.g.
/// `#[doc = "HashMap"]`) are skipped so their contents cannot unbalance
/// the brackets — or ever reach the token stream.
fn skip_attribute(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'[' => {
                depth += 1;
                i += 1;
            }
            b']' => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return i;
                }
            }
            b'"' => i = skip_plain_string(b, i + 1, line),
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Lexes `src` into a token stream plus the allow markers found in its
/// comments. Byte-oriented: all delimiters are ASCII, and non-ASCII bytes
/// (which only appear in comments and literals) are ≥ 0x80, so they can
/// never be mistaken for one.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_allow_marks(&src[start..i], line, &mut out.allows);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                let mut seg = i;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'\n' {
                        scan_allow_marks(&src[seg..i], line, &mut out.allows);
                        line += 1;
                        i += 1;
                        seg = i;
                    } else {
                        i += 1;
                    }
                }
                let end = i.min(b.len());
                scan_allow_marks(&src[seg..end], line, &mut out.allows);
            }
            b'#' => {
                let mut j = i + 1;
                if b.get(j) == Some(&b'!') {
                    j += 1;
                }
                if b.get(j) == Some(&b'[') {
                    i = skip_attribute(b, j, &mut line);
                } else {
                    out.tokens.push(Token {
                        kind: Kind::Punct,
                        text: "#".into(),
                        line,
                    });
                    i += 1;
                }
            }
            b'"' => {
                let l = line;
                i = skip_plain_string(b, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line: l,
                });
            }
            b'\'' => {
                // Char literal vs lifetime.
                let l = line;
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip escape, then to the quote.
                    i += 3;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.tokens.push(Token {
                        kind: Kind::Literal,
                        text: String::new(),
                        line: l,
                    });
                } else if b.get(i + 1).is_some_and(|&n| is_ident_cont(n))
                    && b.get(i + 2) != Some(&b'\'')
                {
                    // Lifetime: 'name with no closing quote.
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: Kind::Life,
                        text: src[start..i].to_string(),
                        line: l,
                    });
                } else {
                    // Plain char literal like 'a' or '('.
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.tokens.push(Token {
                        kind: Kind::Literal,
                        text: String::new(),
                        line: l,
                    });
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                let next = b.get(i).copied();
                // String-literal prefixes and raw identifiers.
                match (word, next) {
                    ("r" | "br" | "cr", Some(b'"' | b'#'))
                        if word != "r"
                            || next != Some(b'#')
                            || b.get(i + 1) == Some(&b'"')
                            || b.get(i + 1) == Some(&b'#') =>
                    {
                        let l = line;
                        i = skip_raw_string(b, i, &mut line);
                        out.tokens.push(Token {
                            kind: Kind::Literal,
                            text: String::new(),
                            line: l,
                        });
                    }
                    ("r", Some(b'#')) => {
                        // Raw identifier r#word: lex as the bare word.
                        let rs = i + 1;
                        i += 1;
                        while i < b.len() && is_ident_cont(b[i]) {
                            i += 1;
                        }
                        out.tokens.push(Token {
                            kind: Kind::Ident,
                            text: src[rs..i].to_string(),
                            line,
                        });
                    }
                    ("b" | "c", Some(b'"')) => {
                        let l = line;
                        i = skip_plain_string(b, i + 1, &mut line);
                        out.tokens.push(Token {
                            kind: Kind::Literal,
                            text: String::new(),
                            line: l,
                        });
                    }
                    ("b", Some(b'\'')) => {
                        // Byte char literal b'x'.
                        let l = line;
                        i += 2;
                        if b.get(i.wrapping_sub(1)) == Some(&b'\\') {
                            i += 1;
                        }
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                        i = (i + 1).min(b.len());
                        out.tokens.push(Token {
                            kind: Kind::Literal,
                            text: String::new(),
                            line: l,
                        });
                    }
                    _ => out.tokens.push(Token {
                        kind: Kind::Ident,
                        text: word.to_string(),
                        line,
                    }),
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() {
                    if is_ident_cont(b[i]) {
                        i += 1;
                    } else if b[i] == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // Float like 1.5 — but not `1..5` or `x.0.y`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: Kind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                // Multi-char operators the analyses need as single tokens.
                let pair = b.get(i + 1).map(|&n| [c, n]);
                let two = match pair {
                    Some([b':', b':']) => Some("::"),
                    Some([b'-', b'>']) => Some("->"),
                    Some([b'=', b'>']) => Some("=>"),
                    Some([b'|', b'|']) => Some("||"),
                    Some([b'&', b'&']) => Some("&&"),
                    _ => None,
                };
                if let Some(t) = two {
                    out.tokens.push(Token {
                        kind: Kind::Punct,
                        text: t.into(),
                        line,
                    });
                    i += 2;
                } else {
                    out.tokens.push(Token {
                        kind: Kind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind != Kind::Literal)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_paths_tokenize() {
        assert_eq!(
            texts("use std::collections::HashMap;"),
            ["use", "std", "::", "collections", "::", "HashMap", ";"]
        );
    }

    #[test]
    fn string_contents_never_become_tokens() {
        let lexed = lex("let s = \"HashMap Instant::now println!\";");
        assert!(lexed.tokens.iter().all(|t| t.text != "HashMap"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == Kind::Literal && t.text.is_empty()));
    }

    #[test]
    fn raw_strings_with_hashes_are_skipped() {
        let src = "let s = r#\"Instant::now \" inner \"#; let t = 1;";
        let toks = texts(src);
        assert!(!toks.contains(&"Instant".to_string()), "{toks:?}");
        assert!(toks.contains(&"t".to_string()));
    }

    #[test]
    fn comments_are_stripped_but_allow_marks_survive() {
        let src = "// HashMap mention; lint: allow(hash-collections)\nlet x = 1;\n";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(
            lexed.allows,
            vec![AllowMark {
                line: 1,
                rule: "hash-collections".into(),
                file_scope: false
            }]
        );
    }

    #[test]
    fn block_comments_nest_and_track_lines() {
        let src = "/* outer /* inner */ still comment\nsecond */ let y = 2;";
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            ["let", "y", "=", "2", ";"]
        );
        assert_eq!(lexed.tokens[0].line, 2);
    }

    #[test]
    fn allow_file_marker_is_distinguished() {
        let src = "// real clock by design; lint: allow-file(wall-clock)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].file_scope);
        assert_eq!(lexed.allows[0].rule, "wall-clock");
    }

    #[test]
    fn attributes_are_stripped_including_doc_strings() {
        let src = "#[doc = \"uses HashMap and Instant::now\"]\n#[derive(Clone)]\nstruct S;";
        let toks = texts(src);
        assert_eq!(toks, ["struct", "S", ";"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let s = '\\n'; }");
        let lifes: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Life)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifes, ["a", "a"]);
        assert_eq!(
            toks.tokens
                .iter()
                .filter(|t| t.kind == Kind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        assert_eq!(
            texts("a::b -> c => d || e && f"),
            ["a", "::", "b", "->", "c", "=>", "d", "||", "e", "&&", "f"]
        );
    }

    #[test]
    fn numbers_including_floats_and_tuple_access() {
        assert_eq!(
            texts("1.5 + x.0 .. 2"),
            ["1.5", "+", "x", ".", "0", ".", ".", "2"]
        );
    }

    #[test]
    fn line_numbers_are_accurate() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn multi_line_strings_and_continuations_keep_line_counts() {
        // A plain newline inside a string, and a `\` line continuation:
        // both must advance the line counter.
        let src = "let a = \"one\ntwo\";\nlet b = \"one \\\n two\";\nlet c = 1;";
        let lexed = lex(src);
        let c = lexed.tokens.iter().find(|t| t.text == "c").expect("c");
        assert_eq!(c.line, 5);
    }
}
