//! The lint's rule families and the token-pattern scan for the
//! determinism rules.
//!
//! The five determinism rules (wall-clock, hash-collections, ambient-rng,
//! adhoc-telemetry, no-rc) match short *token sequences* against the
//! lexed stream, so `"HashMap"` inside a string literal, `Instant::now`
//! in a doc comment, and `println!` in prose can never fire — the false
//! positives the old substring matcher produced by design. The three
//! borrow-graph rules (borrow-overlap, borrow-order, guard-across-pool)
//! are produced by `borrows`; this module only carries their metadata so
//! reporting, `--rule` filtering, and the allow machinery treat all eight
//! uniformly.

use crate::lex::{AllowMark, Kind, Lexed};
use std::path::{Path, PathBuf};

/// A single flagged site.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub file: PathBuf,
    /// 1-based source line.
    pub line: u32,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Site-specific explanation (the rule's rationale for token rules,
    /// the guard/cycle narrative for borrow rules).
    pub message: String,
    /// The trimmed source line, for human output.
    pub text: String,
}

/// How a rule produces findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Token-sequence pattern match.
    Token,
    /// Borrow-graph analysis (see `borrows`).
    Borrow,
}

/// One rule family.
pub struct Rule {
    /// Name used in `lint: allow(<name>)` escapes, `--rule` filters, and
    /// reports.
    pub name: &'static str,
    pub kind: RuleKind,
    /// Token sequences whose presence flags a site (token rules only).
    /// The first element of each pattern must lex as an identifier.
    pub patterns: &'static [&'static [&'static str]],
    /// One-line rationale shown with each violation.
    pub why: &'static str,
}

pub const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        kind: RuleKind::Token,
        patterns: &[
            &["std", "::", "time", "::", "Instant"],
            &["std", "::", "time", "::", "SystemTime"],
            &["Instant", "::", "now"],
            &["SystemTime", "::", "now"],
        ],
        why: "simulated time must come from the event queue, not the host clock",
    },
    Rule {
        name: "hash-collections",
        kind: RuleKind::Token,
        patterns: &[&["HashMap"], &["HashSet"]],
        why: "hash iteration order is randomized per process; use BTreeMap/BTreeSet",
    },
    Rule {
        name: "ambient-rng",
        kind: RuleKind::Token,
        patterns: &[
            &["thread_rng"],
            &["rand", "::", "random"],
            &["from_entropy"],
            &["OsRng"],
        ],
        why: "randomness must flow from the seeded SeedSource streams",
    },
    Rule {
        name: "adhoc-telemetry",
        kind: RuleKind::Token,
        patterns: &[&["println", "!"], &["eprintln", "!"], &["dbg", "!"]],
        why: "substrates report through the structured Tracer, not ad-hoc prints",
    },
    Rule {
        name: "no-rc",
        kind: RuleKind::Token,
        patterns: &[&["std", "::", "rc", "::", "Rc"], &["Rc", "::", "new"]],
        why:
            "Rc pins engine state to one thread; use mashup_sim::Shared (Arc<AtomicRefCell>) or Arc",
    },
    Rule {
        name: "borrow-overlap",
        kind: RuleKind::Borrow,
        patterns: &[],
        why: "two live guards on one Shared cell panic at the second borrow \
              (AtomicRefCell borrows are all-exclusive); take momentary guards \
              one statement at a time, or drop() the first guard",
    },
    Rule {
        name: "borrow-order",
        kind: RuleKind::Borrow,
        patterns: &[],
        why: "functions that nest borrows of two cells in opposite orders \
              panic at first concurrent contention; borrow cells in one \
              crate-wide order (or copy what you need out first)",
    },
    Rule {
        name: "guard-across-pool",
        kind: RuleKind::Borrow,
        patterns: &[],
        why: "a guard held across a worker-pool or thread call hands the \
              borrow to other threads and panics at first contention; \
              finish the borrow (or copy out) before fanning out",
    },
];

/// Looks a rule up by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Whether a violation of `rule` at `line` is escaped by an allow marker:
/// a file-scoped `lint: allow-file(rule)` anywhere, or a `lint:
/// allow(rule)` on the same line or the directly preceding line.
pub fn is_allowed(allows: &[AllowMark], rule: &str, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.rule == rule && (a.file_scope || a.line == line || a.line + 1 == line))
}

/// Runs the token-pattern rules over one lexed file, appending violations.
/// At most one violation per (rule, line), matching the old per-line
/// report granularity.
pub fn scan_token_rules(path: &Path, lexed: &Lexed, lines: &[&str], out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for rule in RULES.iter().filter(|r| r.kind == RuleKind::Token) {
        let mut last_line = 0u32;
        for i in 0..toks.len() {
            if toks[i].kind != Kind::Ident {
                continue;
            }
            let hit = rule.patterns.iter().any(|pat| {
                toks.len() - i >= pat.len()
                    && pat.iter().zip(&toks[i..]).all(|(p, t)| t.text == **p)
            });
            if !hit {
                continue;
            }
            let line = toks[i].line;
            if line == last_line || is_allowed(&lexed.allows, rule.name, line) {
                continue;
            }
            last_line = line;
            out.push(Violation {
                file: path.to_path_buf(),
                line,
                rule: rule.name,
                message: rule.why.to_string(),
                text: source_line(lines, line),
            });
        }
    }
}

/// The trimmed source text of 1-based `line` (empty if out of range).
pub fn source_line(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn scan(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let mut out = Vec::new();
        scan_token_rules(Path::new("t.rs"), &lexed, &lines, &mut out);
        out
    }

    #[test]
    fn every_token_rule_fires_on_real_code() {
        let cases = [
            ("wall-clock", "let t = std::time::Instant::now();"),
            ("wall-clock", "let t = SystemTime::now();"),
            ("hash-collections", "use std::collections::HashMap;"),
            (
                "hash-collections",
                "let s: HashSet<u32> = Default::default();",
            ),
            ("ambient-rng", "let mut rng = thread_rng();"),
            ("ambient-rng", "let x: f64 = rand::random();"),
            ("adhoc-telemetry", "println!(\"scheduling\");"),
            ("adhoc-telemetry", "eprintln!(\"warn\");"),
            ("adhoc-telemetry", "dbg!(&queue);"),
            ("no-rc", "use std::rc::Rc;"),
            ("no-rc", "let state = Rc::new(World::default());"),
        ];
        for (rule, src) in cases {
            let hits = scan(src);
            assert!(
                hits.iter().any(|v| v.rule == rule),
                "{rule} did not fire on {src:?}: {hits:?}"
            );
        }
    }

    #[test]
    fn patterns_in_strings_do_not_fire() {
        assert_eq!(
            scan("let s = \"HashMap Instant::now println! Rc::new(\";"),
            []
        );
    }

    #[test]
    fn patterns_in_comments_and_docs_do_not_fire() {
        let src = "/// Uses a HashMap internally; see Instant::now for details.\n\
                   // println!(\"debug\") was removed\n\
                   /* thread_rng() in a block comment */\n\
                   fn f() {}\n";
        assert_eq!(scan(src), []);
    }

    #[test]
    fn substring_identifiers_do_not_fire() {
        // The old matcher flagged these; token equality must not.
        assert_eq!(
            scan("struct MyHashMapLike; fn dbg_helper() {} let printlnish = 1;"),
            []
        );
    }

    #[test]
    fn one_violation_per_rule_per_line() {
        // Both wall-clock patterns match this line; report it once.
        let hits = scan("let t = std::time::Instant::now();");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn allow_marks_suppress_same_and_next_line() {
        let same = "use std::collections::HashMap; // keyed only; lint: allow(hash-collections)";
        assert_eq!(scan(same), []);
        let prev = "// keyed lookups only; lint: allow(hash-collections)\n\
                    use std::collections::HashMap;";
        assert_eq!(scan(prev), []);
        let file = "// real clock is the point; lint: allow-file(wall-clock)\n\n\n\
                    fn f() { let t = Instant::now(); }";
        assert_eq!(scan(file), []);
    }

    #[test]
    fn allow_for_the_wrong_rule_or_distant_line_does_not_suppress() {
        assert_eq!(
            scan("// lint: allow(wall-clock)\nuse std::collections::HashMap;").len(),
            1
        );
        assert_eq!(
            scan("// lint: allow(hash-collections)\n\nuse std::collections::HashMap;").len(),
            1
        );
    }
}
