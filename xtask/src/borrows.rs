//! Borrow-graph analysis over `Shared<T>` (`Arc<AtomicRefCell<..>>`)
//! guards.
//!
//! `AtomicRefCell` borrows are all-exclusive: a second live guard on the
//! same cell — shared or mutable, same thread or not — panics at the
//! borrow site. PR 6 established by hand audit that the engine never
//! overlaps guards; this module mechanizes that audit as three rules over
//! the token stream:
//!
//! * **borrow-overlap** — a `.borrow()` / `.borrow_mut()` on a cell while
//!   another guard on the *same* cell (matched by its receiver path, e.g.
//!   `self.state`) is still live in the enclosing lexical scopes. The
//!   blessed fix is the momentary-guard idiom: one borrow per statement,
//!   or an explicit `drop(guard)`.
//! * **borrow-order** — per function, an edge `A -> B` is recorded when
//!   cell `B` is borrowed while a guard on cell `A` is live (cells are
//!   unified across functions by their final path component, e.g.
//!   `self.state` and `platform.state` are both `state`). The edges are
//!   unioned across each linted crate; a cycle means two call paths can
//!   interleave on two cells in opposite orders and panic (or, with a
//!   blocking cell, deadlock) at first contention.
//! * **guard-across-pool** — a call into a worker-pool / thread API
//!   (`par_map`, `spawn_workers`, `spawn`, `scope`, `scoped`) while any
//!   guard is live. The guard's borrow then races every worker's first
//!   borrow of that cell.
//!
//! The model is lexical and deliberately conservative in both directions
//! (it is a linter, not a proof): distinct receiver paths are assumed to
//! be distinct cells (aliases like `driver` / `driver2 = driver.clone()`
//! are not unified), closure bodies are analyzed as separate functions
//! (they usually run later — the pool rule covers the dangerous subset),
//! and a guard returned out of a helper function is not tracked at the
//! caller. Liveness follows Rust's scoping: `let g = cell.borrow();`
//! lives to the end of its block (or an explicit `drop(g)`); any other
//! borrow is a temporary that lives to the end of its statement; `match`
//! scrutinee and `for`-iterator temporaries stay live across the body,
//! while plain `if`/`while` condition temporaries do not; only one
//! `match` arm runs, so arms are independent statements.

use crate::lex::{AllowMark, Kind, Lexed, Token};
use crate::rules::{is_allowed, source_line, Violation};
use crate::scopes::{fn_body_open, functions, matching_brace};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Thread-fanout APIs a live guard must not cross.
const POOL_APIS: &[&str] = &["par_map", "spawn_workers", "spawn", "scope", "scoped"];

/// One "guard on `from` was live while `to` was borrowed" observation.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: PathBuf,
    pub line: u32,
    pub text: String,
}

/// Per-file analysis output: direct violations (overlap, pool) plus the
/// raw borrow-order edges for crate-level cycle detection.
#[derive(Debug, Default)]
pub struct FileBorrows {
    pub violations: Vec<Violation>,
    pub edges: Vec<Edge>,
}

/// A live borrow guard.
#[derive(Debug)]
struct Guard {
    /// Full receiver path, e.g. `self.state` (unique placeholder for
    /// unresolvable receivers).
    cell: String,
    /// Final path component for cross-function unification; empty when
    /// the receiver could not be resolved.
    last: String,
    /// Binding name for `let g = cell.borrow();` guards (enables
    /// `drop(g)` tracking). `None` for statement temporaries.
    var: Option<String>,
    line: u32,
    /// Statement temporary (cleared at `;`) vs. block-scoped binding.
    momentary: bool,
    /// Block depth the guard was created at.
    depth: usize,
}

struct Walker<'a> {
    toks: &'a [Token],
    file: &'a Path,
    lines: &'a [&'a str],
    allows: &'a [AllowMark],
    out: &'a mut FileBorrows,
    guards: Vec<Guard>,
    /// One entry per open block: whether the block keeps the enclosing
    /// statement's temporaries live (match body, `for` body, `if let` /
    /// `while let` body).
    matchlike: Vec<bool>,
}

fn tx(toks: &[Token], i: usize) -> &str {
    toks.get(i).map_or("", |t| t.text.as_str())
}

fn is_ident(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.kind == Kind::Ident)
}

impl<'a> Walker<'a> {
    /// Whether guard `g` is live at the current point. Block-scoped
    /// guards always are (until truncated); temporaries are visible only
    /// through match-like block boundaries.
    fn visible(&self, g: &Guard) -> bool {
        !g.momentary || self.matchlike[g.depth..].iter().all(|&m| m)
    }

    fn live_guards(&self) -> impl Iterator<Item = &Guard> {
        self.guards.iter().filter(|g| self.visible(g))
    }

    /// Registers a borrow of `cell` at `line`, checking overlap and
    /// recording order edges against every live guard.
    fn borrow_event(
        &mut self,
        cell: String,
        last: String,
        line: u32,
        var: Option<String>,
        momentary: bool,
        depth: usize,
    ) {
        let known = !cell.starts_with('?');
        if known {
            let hit = self
                .live_guards()
                .find(|g| g.cell == cell)
                .map(|g| (g.line, g.momentary));
            if let Some((gline, gmut)) = hit {
                if !is_allowed(self.allows, "borrow-overlap", line) {
                    let kind = if gmut { "temporary guard" } else { "guard" };
                    self.out.violations.push(Violation {
                        file: self.file.to_path_buf(),
                        line,
                        rule: "borrow-overlap",
                        message: format!(
                            "`{cell}` is borrowed here while the {kind} taken on the same \
                             cell at line {gline} is still live — AtomicRefCell borrows are \
                             all-exclusive, so this panics at runtime; borrow momentarily \
                             (one statement at a time) or drop() the first guard"
                        ),
                        text: source_line(self.lines, line),
                    });
                }
            }
        }
        if !last.is_empty() && !is_allowed(self.allows, "borrow-order", line) {
            let held: Vec<(String, u32)> = self
                .live_guards()
                .filter(|g| !g.last.is_empty() && g.last != last)
                .map(|g| (g.last.clone(), g.line))
                .collect();
            for (from, _) in held {
                self.out.edges.push(Edge {
                    from,
                    to: last.clone(),
                    file: self.file.to_path_buf(),
                    line,
                    text: source_line(self.lines, line),
                });
            }
        }
        self.guards.push(Guard {
            cell,
            last,
            var,
            line,
            momentary,
            depth,
        });
    }

    /// Parses the receiver path that ends at the `.` before a
    /// `borrow`/`borrow_mut` token at `dot` (searching backwards).
    /// Returns `(full_path, last_component)` or `None` for receivers the
    /// token model cannot name (call results, parenthesized expressions).
    fn path_backward(&self, dot: usize) -> Option<(String, String)> {
        let t = self.toks;
        let mut k = dot; // index just past the last path token, walking left
        let mut parts: Vec<String> = Vec::new();
        let mut last_ident = String::new();
        loop {
            if k == 0 {
                break;
            }
            let j = k - 1;
            match t[j].text.as_str() {
                "]" => {
                    // Index suffix: find the matching `[`, keep its text.
                    let mut depth = 0usize;
                    let mut m = j;
                    loop {
                        match t[m].text.as_str() {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if m == 0 {
                            return None;
                        }
                        m -= 1;
                    }
                    let idx: String = t[m..=j].iter().map(|t| t.text.as_str()).collect();
                    parts.push(idx);
                    k = m;
                }
                _ if is_ident(t, j) || t[j].kind == Kind::Num => {
                    if last_ident.is_empty() && t[j].kind == Kind::Ident {
                        last_ident = t[j].text.clone();
                    }
                    parts.push(t[j].text.clone());
                    // Continue left only through `.` / `::` separators.
                    if j >= 2 && (tx(t, j - 1) == "." || tx(t, j - 1) == "::") {
                        let p = j - 2;
                        if is_ident(t, p) || t[p].kind == Kind::Num || tx(t, p) == "]" {
                            parts.push(t[j - 1].text.clone());
                            k = j - 1;
                            continue;
                        }
                    }
                    break;
                }
                _ => return None,
            }
            // After an index suffix, keep walking left through separators.
            if k >= 1 && (is_ident(t, k - 1) || t[k - 1].kind == Kind::Num) {
                continue;
            }
            break;
        }
        if parts.is_empty() || last_ident.is_empty() {
            return None;
        }
        parts.reverse();
        Some((parts.concat(), last_ident))
    }

    /// Attempts to consume a direct guard binding
    /// `let [mut] NAME [: TYPE] = PATH.borrow[_mut]();` starting at the
    /// `let` token. Returns the index past the `;` on success.
    fn try_let_guard(&mut self, i: usize, depth: usize) -> Option<usize> {
        let t = self.toks;
        let mut j = i + 1;
        if tx(t, j) == "mut" {
            j += 1;
        }
        if !is_ident(t, j) {
            return None;
        }
        let name = t[j].text.clone();
        j += 1;
        if tx(t, j) == ":" {
            // Skip the type ascription up to the `=` at bracket depth 0.
            j += 1;
            let (mut pd, mut bd, mut ad) = (0i32, 0i32, 0i32);
            loop {
                match tx(t, j) {
                    "" => return None,
                    "(" => pd += 1,
                    ")" => pd -= 1,
                    "[" => bd += 1,
                    "]" => bd -= 1,
                    "<" => ad += 1,
                    ">" => ad -= 1,
                    "=" if pd == 0 && bd == 0 && ad == 0 => break,
                    ";" | "{" | "}" if pd == 0 && bd == 0 => return None,
                    _ => {}
                }
                j += 1;
            }
        }
        if tx(t, j) != "=" {
            return None;
        }
        j += 1;
        // Forward-parse PATH . borrow[_mut] ( ) ;
        if !is_ident(t, j) {
            return None;
        }
        let start = j;
        loop {
            let sep = tx(t, j + 1);
            if sep == "." || sep == "::" {
                let nxt = tx(t, j + 2);
                if (nxt == "borrow" || nxt == "borrow_mut") && sep == "." && tx(t, j + 3) == "(" {
                    break;
                }
                if is_ident(t, j + 2) || t.get(j + 2).is_some_and(|k| k.kind == Kind::Num) {
                    j += 2;
                    continue;
                }
                return None;
            }
            if sep == "[" {
                let mut depth_b = 0usize;
                let mut m = j + 1;
                loop {
                    match tx(t, m) {
                        "" => return None,
                        "[" => depth_b += 1,
                        "]" => {
                            depth_b -= 1;
                            if depth_b == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                j = m;
                continue;
            }
            return None;
        }
        let dot = j + 1;
        if tx(t, dot + 2) != "(" || tx(t, dot + 3) != ")" || tx(t, dot + 4) != ";" {
            return None;
        }
        let path: String = t[start..=j].iter().map(|k| k.text.as_str()).collect();
        let mut last = String::new();
        for k in (start..=j).rev() {
            if t[k].kind == Kind::Ident {
                last = t[k].text.clone();
                break;
            }
        }
        let line = t[dot + 1].line;
        let bind = if name == "_" { None } else { Some(name) };
        // `let _ = cell.borrow();` drops the guard immediately.
        if bind.is_none() {
            return Some(dot + 5);
        }
        self.borrow_event(path, last, line, bind, false, depth);
        Some(dot + 5)
    }

    /// Whether a `|` at `i` starts a closure (vs. a binary/or-pattern
    /// use), judged by the preceding token.
    fn closure_starts(&self, i: usize, range_start: usize) -> bool {
        if tx(self.toks, i.wrapping_sub(1)) == "move" {
            return true;
        }
        if i == range_start {
            return true;
        }
        match self.toks.get(i - 1) {
            None => true,
            Some(p) => matches!(
                p.text.as_str(),
                "(" | ","
                    | "="
                    | "=>"
                    | "{"
                    | ";"
                    | "["
                    | ":"
                    | "&&"
                    | "||"
                    | "return"
                    | "else"
                    | "in"
                    | "!"
            ),
        }
    }

    /// Walks tokens in `[i, end)` at block `depth`. Returns the index
    /// just past the `}` that closes this block (or `end`).
    #[allow(clippy::too_many_lines)]
    fn scan(&mut self, mut i: usize, end: usize, depth: usize) -> usize {
        let range_start = i;
        let mut pending_matchlike = false;
        let (mut pd, mut bd) = (0i32, 0i32); // paren/bracket depth within this block
        let mut in_arm_pattern = *self.matchlike.last().unwrap_or(&false);
        while i < end.min(self.toks.len()) {
            let text = tx(self.toks, i);
            match text {
                "}" => {
                    let was_matchlike = self.matchlike.pop().unwrap_or(false);
                    self.guards.retain(|g| g.depth < depth);
                    if was_matchlike && depth > 0 {
                        // The match/for statement ends with its body:
                        // scrutinee temporaries die here.
                        self.guards
                            .retain(|g| !(g.momentary && g.depth == depth - 1));
                    }
                    return i + 1;
                }
                "{" => {
                    if !pending_matchlike {
                        // A plain block ends the enclosing condition /
                        // prefix expression: `if` and `while` condition
                        // temporaries are dropped before the body runs
                        // (unlike `match` scrutinees and `for` iterators).
                        self.guards.retain(|g| !(g.momentary && g.depth == depth));
                    }
                    self.matchlike.push(pending_matchlike);
                    pending_matchlike = false;
                    i = self.scan(i + 1, end, depth + 1);
                    continue;
                }
                ";" if pd == 0 && bd == 0 => {
                    self.guards.retain(|g| !(g.momentary && g.depth == depth));
                    pending_matchlike = false;
                    i += 1;
                }
                "," if pd == 0 && bd == 0 && *self.matchlike.last().unwrap_or(&false) => {
                    // Next match arm: temporaries of the previous arm die,
                    // and we are back in pattern position.
                    self.guards.retain(|g| !(g.momentary && g.depth == depth));
                    in_arm_pattern = true;
                    i += 1;
                }
                "(" => {
                    pd += 1;
                    i += 1;
                }
                ")" => {
                    pd -= 1;
                    i += 1;
                }
                "[" => {
                    bd += 1;
                    i += 1;
                }
                "]" => {
                    bd -= 1;
                    i += 1;
                }
                "=>" => {
                    in_arm_pattern = false;
                    i += 1;
                }
                "match" | "for" => {
                    pending_matchlike = true;
                    i += 1;
                }
                "if" | "while" => {
                    pending_matchlike = tx(self.toks, i + 1) == "let";
                    i += 1;
                }
                "let" => match self.try_let_guard(i, depth) {
                    Some(ni) => i = ni,
                    None => i += 1,
                },
                "drop"
                    if tx(self.toks, i + 1) == "("
                        && is_ident(self.toks, i + 2)
                        && tx(self.toks, i + 3) == ")" =>
                {
                    let name = tx(self.toks, i + 2).to_string();
                    if let Some(pos) = self
                        .guards
                        .iter()
                        .rposition(|g| g.var.as_deref() == Some(&name))
                    {
                        self.guards.remove(pos);
                    }
                    i += 4;
                }
                "fn" => {
                    // Nested fn item: analyzed separately; skip its body.
                    match fn_body_open(self.toks, i) {
                        Some(open) if open < end => i = matching_brace(self.toks, open) + 1,
                        _ => i += 1,
                    }
                }
                "|" | "||" if !in_arm_pattern && self.closure_starts(i, range_start) => {
                    i = self.closure(i, end);
                }
                "borrow" | "borrow_mut"
                    if tx(self.toks, i.wrapping_sub(1)) == "."
                        && tx(self.toks, i + 1) == "("
                        && tx(self.toks, i + 2) == ")" =>
                {
                    let line = self.toks[i].line;
                    let (cell, last) = self
                        .path_backward(i - 1)
                        .unwrap_or_else(|| (format!("?{i}"), String::new()));
                    self.borrow_event(cell, last, line, None, true, depth);
                    i += 3;
                }
                _ if POOL_APIS.contains(&text)
                    && is_ident(self.toks, i)
                    && tx(self.toks, i + 1) == "("
                    && tx(self.toks, i.wrapping_sub(1)) != "fn" =>
                {
                    let line = self.toks[i].line;
                    let hit = self.live_guards().next().map(|g| (g.cell.clone(), g.line));
                    if let Some((gcell, gline)) = hit {
                        if !is_allowed(self.allows, "guard-across-pool", line) {
                            self.out.violations.push(Violation {
                                file: self.file.to_path_buf(),
                                line,
                                rule: "guard-across-pool",
                                message: format!(
                                    "`{text}` is called while the guard on `{gcell}` (line \
                                     {gline}) is live — the borrow crosses the worker pool \
                                     and panics at first contention; finish the borrow or \
                                     copy what you need out before fanning out"
                                ),
                                text: source_line(self.lines, line),
                            });
                        }
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        end
    }

    /// Consumes a closure starting at the `|` / `||` at `i`: its body is
    /// analyzed as a separate function (fresh guard context — it usually
    /// runs later). Returns the index just past the body.
    fn closure(&mut self, i: usize, end: usize) -> usize {
        let t = self.toks;
        // Find the end of the parameter list.
        let body = if tx(t, i) == "||" {
            i + 1
        } else {
            let mut j = i + 1;
            loop {
                match tx(t, j) {
                    "" | ";" | "{" => return i + 1, // not actually a closure
                    "|" => break j + 1,
                    _ => j += 1,
                }
            }
        };
        let mut child = Walker {
            toks: self.toks,
            file: self.file,
            lines: self.lines,
            allows: self.allows,
            out: self.out,
            guards: Vec::new(),
            matchlike: vec![false],
        };
        if tx(t, body) == "{" {
            child.matchlike.push(false);
            let after = child.scan(body + 1, end, 2);
            return after;
        }
        // Expression body: runs to the next `,` / `)` / `;` / `}` / `]`
        // at this nesting level.
        let (mut pd, mut bd, mut brd) = (0i32, 0i32, 0i32);
        let mut j = body;
        while j < end.min(t.len()) {
            match tx(t, j) {
                "(" => pd += 1,
                "[" => bd += 1,
                "{" => brd += 1,
                ")" if pd == 0 => break,
                "]" if bd == 0 => break,
                "}" if brd == 0 => break,
                ")" => pd -= 1,
                "]" => bd -= 1,
                "}" => brd -= 1,
                "," | ";" if pd == 0 && bd == 0 && brd == 0 => break,
                _ => {}
            }
            j += 1;
        }
        child.scan(body, j, 1);
        j
    }
}

/// Runs the borrow analysis over every function in one lexed file.
pub fn analyze_file(path: &Path, lexed: &Lexed, lines: &[&str]) -> FileBorrows {
    let mut out = FileBorrows::default();
    for f in functions(&lexed.tokens) {
        let mut w = Walker {
            toks: &lexed.tokens,
            file: path,
            lines,
            allows: &lexed.allows,
            out: &mut out,
            guards: Vec::new(),
            matchlike: vec![false],
        };
        w.scan(f.open + 1, f.close + 1, 1);
    }
    out
}

/// Unions borrow-order edges (typically one crate's worth) and reports
/// every edge that participates in a cycle. Edges are deduplicated by
/// `(from, to)` keeping the first site.
pub fn cycle_violations(edges: &[Edge]) -> Vec<Violation> {
    let mut first: BTreeMap<(&str, &str), &Edge> = BTreeMap::new();
    for e in edges {
        first.entry((&e.from, &e.to)).or_insert(e);
    }
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in first.keys() {
        adj.entry(from).or_default().insert(to);
    }
    let reach = |src: &str, dst: &str| -> Option<Vec<String>> {
        // BFS path src -> dst.
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([src]);
        let mut seen = BTreeSet::from([src]);
        while let Some(n) = queue.pop_front() {
            if n == dst {
                let mut path = vec![dst.to_string()];
                let mut cur = dst;
                while cur != src {
                    cur = prev[cur];
                    path.push(cur.to_string());
                }
                path.reverse();
                return Some(path);
            }
            for &m in adj.get(n).into_iter().flatten() {
                if seen.insert(m) {
                    prev.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
        None
    };
    let mut out = Vec::new();
    for ((from, to), e) in &first {
        if let Some(back) = reach(to, from) {
            let mut cycle = vec![from.to_string()];
            cycle.extend(back);
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: "borrow-order",
                message: format!(
                    "borrow-order cycle `{}`: a guard on `{from}` is live here while \
                     `{to}` is borrowed, and elsewhere the crate nests the opposite \
                     order — under contention the interleaving panics; pick one \
                     crate-wide order or copy values out instead of nesting",
                    cycle.join(" -> ")
                ),
                text: e.text.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn run(src: &str) -> FileBorrows {
        let lexed = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        analyze_file(Path::new("t.rs"), &lexed, &lines)
    }

    fn rules_fired(src: &str) -> Vec<&'static str> {
        let fb = run(src);
        let mut rules: Vec<&'static str> = fb.violations.iter().map(|v| v.rule).collect();
        rules.extend(cycle_violations(&fb.edges).iter().map(|v| v.rule));
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    #[test]
    fn let_guard_then_second_borrow_overlaps() {
        let src = "fn f(cell: &Shared<u32>) {\n\
                   let g = cell.borrow();\n\
                   let h = cell.borrow_mut();\n\
                   }";
        let fb = run(src);
        assert_eq!(fb.violations.len(), 1, "{:?}", fb.violations);
        assert_eq!(fb.violations[0].rule, "borrow-overlap");
        assert_eq!(fb.violations[0].line, 3);
    }

    #[test]
    fn two_borrows_in_one_statement_overlap() {
        let src = "fn f(c: &Shared<P>) { let x = c.borrow().a + c.borrow().b; }";
        assert_eq!(rules_fired(src), ["borrow-overlap"]);
    }

    #[test]
    fn field_paths_distinguish_cells() {
        let src = "fn f(&self) { let a = self.links.borrow_mut(); self.state.borrow().x; }";
        let fb = run(src);
        assert!(fb.violations.is_empty(), "{:?}", fb.violations);
        // ... but the nesting records an order edge links -> state.
        assert_eq!(fb.edges.len(), 1);
        assert_eq!(
            (fb.edges[0].from.as_str(), fb.edges[0].to.as_str()),
            ("links", "state")
        );
    }

    #[test]
    fn momentary_guards_in_sequence_are_clean() {
        let src = "fn f(c: &Shared<P>) {\n\
                   c.borrow_mut().push(1);\n\
                   c.borrow_mut().push(2);\n\
                   let n = c.borrow().len();\n\
                   assert_eq!(n, 2);\n\
                   }";
        assert!(run(src).violations.is_empty());
    }

    #[test]
    fn block_scoping_releases_let_guards() {
        let src = "fn f(c: &Shared<P>) {\n\
                   { let g = c.borrow_mut(); g.push(1); }\n\
                   let h = c.borrow();\n\
                   }";
        assert!(run(src).violations.is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(c: &Shared<P>) {\n\
                   let g = c.borrow_mut();\n\
                   drop(g);\n\
                   let h = c.borrow();\n\
                   }";
        assert!(run(src).violations.is_empty());
    }

    #[test]
    fn shadowing_rebind_still_overlaps() {
        // The first guard is shadowed, not dropped — it lives to the end
        // of the block, so the second borrow panics at runtime.
        let src = "fn f(c: &Shared<P>) { let g = c.borrow(); let g = c.borrow(); g.x(); }";
        assert_eq!(rules_fired(src), ["borrow-overlap"]);
    }

    #[test]
    fn match_arms_are_independent_but_scrutinee_stays_live() {
        let clean = "fn f(c: &Shared<P>) {\n\
                     match x {\n\
                     A => c.borrow().a(),\n\
                     B => c.borrow().b(),\n\
                     }\n\
                     }";
        assert!(
            run(clean).violations.is_empty(),
            "{:?}",
            run(clean).violations
        );
        let bad = "fn f(c: &Shared<P>) {\n\
                   match c.borrow().kind {\n\
                   A => c.borrow_mut().reset(),\n\
                   B => 0,\n\
                   }\n\
                   }";
        assert_eq!(rules_fired(bad), ["borrow-overlap"]);
    }

    #[test]
    fn plain_if_condition_temporaries_do_not_leak_into_the_body() {
        let src = "fn f(c: &Shared<P>) { if c.borrow().ready { c.borrow_mut().fire(); } }";
        assert!(run(src).violations.is_empty(), "{:?}", run(src).violations);
    }

    #[test]
    fn condition_temporaries_die_at_the_block_not_the_statement_end() {
        // `if c.borrow()... { }` has no trailing `;`, but the condition
        // temporary is gone by the next statement.
        let src = "fn f(c: &Shared<P>) { if c.borrow().a { } let g = c.borrow_mut(); g.x(); }";
        assert!(run(src).violations.is_empty(), "{:?}", run(src).violations);
    }

    #[test]
    fn closure_bodies_are_separate_contexts() {
        // The closure runs later; the guard is gone by then.
        let src = "fn f(c: &Shared<P>, sim: &mut Sim) {\n\
                   let g = c.borrow();\n\
                   sim.schedule(move |_| c2.borrow_mut().push(1));\n\
                   g.x();\n\
                   }";
        let fb = run(src);
        assert!(fb.violations.is_empty(), "{:?}", fb.violations);
        assert!(fb.edges.is_empty(), "{:?}", fb.edges);
    }

    #[test]
    fn guard_across_pool_fires() {
        let src = "fn f(c: &Shared<P>) {\n\
                   let g = c.borrow();\n\
                   let out = par_map(items, work);\n\
                   g.x();\n\
                   }";
        let fb = run(src);
        assert_eq!(fb.violations.len(), 1, "{:?}", fb.violations);
        assert_eq!(fb.violations[0].rule, "guard-across-pool");
    }

    #[test]
    fn pool_call_without_live_guard_is_clean() {
        let src = "fn f(c: &Shared<P>) {\n\
                   let n = c.borrow().len();\n\
                   let out = pool.par_map(items, work);\n\
                   std::thread::scope(|s| { s.spawn(|| {}); });\n\
                   }";
        assert!(run(src).violations.is_empty(), "{:?}", run(src).violations);
    }

    #[test]
    fn pool_fn_definitions_do_not_fire() {
        let src = "fn par_map(items: Vec<u32>) { } fn spawn_workers(n: usize) { }";
        assert!(run(src).violations.is_empty());
    }

    #[test]
    fn order_cycle_across_functions_is_detected() {
        let src = "fn a(&self) { let g = self.cache.borrow_mut(); self.queue.borrow().len(); }\n\
                   fn b(&self) { let g = self.queue.borrow_mut(); self.cache.borrow().len(); }";
        let fb = run(src);
        let cyc = cycle_violations(&fb.edges);
        assert_eq!(cyc.len(), 2, "{cyc:?}");
        assert!(
            cyc[0].message.contains("cache -> queue -> cache")
                || cyc[0].message.contains("queue -> cache -> queue")
        );
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let src = "fn a(&self) { let g = self.cache.borrow_mut(); self.queue.borrow().len(); }\n\
                   fn b(&self) { let g = self.cache.borrow_mut(); self.queue.borrow().len(); }";
        let fb = run(src);
        assert!(cycle_violations(&fb.edges).is_empty());
    }

    #[test]
    fn cross_function_unification_uses_the_final_component() {
        // `self.state` in one fn, `platform.state` in the other: same cell
        // family, so the opposite nesting is still a cycle.
        let src = "fn a(&self) { let g = self.state.borrow_mut(); self.rng.borrow().x(); }\n\
                   fn b(platform: &P) { let g = platform.rng.borrow_mut(); platform.state.borrow().x(); }";
        let fb = run(src);
        assert!(!cycle_violations(&fb.edges).is_empty());
    }

    #[test]
    fn allows_suppress_each_borrow_rule() {
        let overlap = "fn f(c: &Shared<P>) {\n\
                       let g = c.borrow();\n\
                       // seeded double-borrow test; lint: allow(borrow-overlap)\n\
                       let h = c.borrow();\n\
                       }";
        assert!(run(overlap).violations.is_empty());
        let order = "fn a(&self) { let g = self.x.borrow_mut(); self.y.borrow().k(); }\n\
                     fn b(&self) {\n\
                     let g = self.y.borrow_mut();\n\
                     // audited: cannot contend; lint: allow(borrow-order)\n\
                     self.x.borrow().k();\n\
                     }";
        let fb = run(order);
        assert!(cycle_violations(&fb.edges).is_empty(), "{:?}", fb.edges);
        let pool = "fn f(c: &Shared<P>) {\n\
                    let g = c.borrow();\n\
                    // guard is read-only setup data; lint: allow(guard-across-pool)\n\
                    par_map(items, work);\n\
                    }";
        assert!(run(pool).violations.is_empty());
    }

    #[test]
    fn unresolvable_receivers_do_not_false_positive() {
        let src = "fn f() { make_cell().borrow_mut().push(1); make_cell().borrow().len(); }";
        let fb = run(src);
        assert!(fb.violations.is_empty());
        assert!(fb.edges.is_empty());
    }

    #[test]
    fn for_loop_iterator_temporaries_stay_live_across_the_body() {
        let src = "fn f(c: &Shared<P>) { for x in c.borrow().items() { c.borrow_mut().mark(x); } }";
        assert_eq!(rules_fired(src), ["borrow-overlap"]);
    }

    #[test]
    fn underscore_let_drops_immediately() {
        let src = "fn f(c: &Shared<P>) { let _ = c.borrow(); let g = c.borrow_mut(); }";
        assert!(run(src).violations.is_empty(), "{:?}", run(src).violations);
    }
}
