//! Brace/scope tracking over the token stream: function discovery and
//! balanced-delimiter navigation.
//!
//! The borrow analysis runs per function body. This module finds every
//! `fn` item in a lexed file (free functions, inherent/trait methods,
//! functions nested inside other functions — each gets its own entry) and
//! exposes the matching-brace arithmetic the walker needs. Closures are
//! *not* items; `borrows` discovers them inside a body during its walk.

use crate::lex::{Kind, Token};

/// One `fn` item: its name and the token range of its body.
#[derive(Debug)]
pub struct FnScope {
    /// The function's name — exercised by the discovery tests; the
    /// analyses key off token ranges only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub name: String,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
}

/// Returns the index of the `}` matching the `{` at `open`, or the stream
/// end if unbalanced. Literals are single tokens, so braces inside strings
/// can never miscount.
pub fn matching_brace(toks: &[Token], open: usize) -> usize {
    debug_assert_eq!(toks[open].text, "{");
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// From the token index of a `fn` keyword, finds the opening `{` of its
/// body: the first `{` outside the parameter parentheses/brackets. Returns
/// `None` for bodyless signatures (trait methods), which end at `;`.
pub fn fn_body_open(toks: &[Token], fn_idx: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (i, t) in toks.iter().enumerate().skip(fn_idx + 1) {
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return Some(i),
            ";" if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Finds every named `fn` item in the stream. Function-pointer types
/// (`fn(u32) -> u32`) have no name token after `fn` and are skipped.
pub fn functions(toks: &[Token]) -> Vec<FnScope> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != Kind::Ident || toks[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        if let Some(open) = fn_body_open(toks, i) {
            out.push(FnScope {
                name: name_tok.text.clone(),
                open,
                close: matching_brace(toks, open),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    #[test]
    fn finds_free_and_nested_functions() {
        let src = "fn outer() { fn inner(x: u32) -> u32 { x } inner(1); }\nfn other() {}";
        let lexed = lex(src);
        let fns = functions(&lexed.tokens);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "other"]);
        // inner's body nests inside outer's.
        assert!(fns[1].open > fns[0].open && fns[1].close < fns[0].close);
    }

    #[test]
    fn skips_bodyless_trait_signatures_and_fn_pointers() {
        let src = "trait T { fn sig(&self) -> u32; }\ntype F = fn(u32) -> bool;\nfn real() {}";
        let fns = functions(&lex(src).tokens);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_body_start() {
        let src = "fn g<T: Into<Vec<u8>>>(x: T) -> Vec<u8> where T: Clone { x.into() }";
        let fns = functions(&lex(src).tokens);
        assert_eq!(fns.len(), 1);
        let toks = &lex(src).tokens;
        assert_eq!(toks[fns[0].open].text, "{");
        assert_eq!(toks[fns[0].close].text, "}");
        assert_eq!(fns[0].close, toks.len() - 1);
    }

    #[test]
    fn matching_brace_handles_nesting() {
        let src = "{ a { b { c } } d }";
        let toks = lex(src).tokens;
        assert_eq!(matching_brace(&toks, 0), toks.len() - 1);
    }
}
