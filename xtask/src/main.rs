//! `cargo xtask` — workspace development tasks.
//!
//! The main task is `lint`, a static-analysis pass over every crate that
//! holds engine state. It is built on a small in-tree lexer (`lex`) — the
//! workspace builds offline, so no `syn` — plus a brace/scope tracker
//! (`scopes`) and a borrow-graph walk (`borrows`). Two rule families:
//!
//! **Determinism rules** (token-pattern matches; simulated results must be
//! a pure function of configuration + seed):
//!
//! * **wall-clock** — `std::time::Instant` / `SystemTime`: simulated time
//!   comes from the event queue (`mashup_sim::SimTime`) only.
//! * **hash-collections** — `HashMap` / `HashSet`: iteration order is
//!   randomized per process. Use `BTreeMap`/`BTreeSet` or dense ids.
//! * **ambient-rng** — `thread_rng`, `rand::random`, `from_entropy`,
//!   `OsRng`: randomness must flow from the seeded `SeedSource` streams.
//! * **adhoc-telemetry** — `println!` / `eprintln!` / `dbg!`: substrates
//!   report through the structured `mashup_sim::Tracer`.
//! * **no-rc** — `std::rc::Rc` pins engine state to one thread; use
//!   `mashup_sim::Shared` (`Arc<AtomicRefCell<..>>`) or `Arc`.
//!
//! **Borrow rules** (graph analysis over `Shared<T>` guards — the
//! mechanized form of PR 6's hand audit; see `borrows` for the model):
//!
//! * **borrow-overlap** — two live guards on one cell panic at the second
//!   borrow. Borrow momentarily, one statement at a time.
//! * **borrow-order** — two cells nested in opposite orders across a crate
//!   panic (or deadlock) at first contention. Keep one crate-wide order.
//! * **guard-across-pool** — a guard live at a `par_map` / `spawn_workers`
//!   / `spawn` / `scope` call crosses threads and panics at contention.
//!
//! A genuinely safe use is exempted by `// lint: allow(<rule>)` on the
//! same line or the directly preceding comment line, or — for files whose
//! whole purpose exempts them (a real-hardware backend's clock, a bench
//! harness's stdout) — `// lint: allow-file(<rule>)` anywhere in the file.
//! Every escape should carry a written justification.
//!
//! `cargo xtask lint [--json] [--rule <name>]...` runs the pass;
//! `cargo xtask lint-selftest` runs the analyzer against the seeded
//! corruption fixtures in `xtask/fixtures/` so a regression in the
//! analyzer itself (a rule silently never firing) fails CI.
//!
//! This binary's own stdout/stderr is its user interface, not engine
//! telemetry. lint: allow-file(adhoc-telemetry)

mod borrows;
mod lex;
mod rules;
mod scopes;

use rules::Violation;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The directories whose `.rs` trees the lint covers: all nine workspace
/// crates that hold engine state, plus xtask itself. `crates/analyze` is
/// deliberately absent — it is pure diagnostics over recorded traces and
/// holds no engine state.
const LINTED_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/cloud/src",
    "crates/core/src",
    "crates/dag/src",
    "crates/serve/src",
    "crates/baselines/src",
    "crates/workflows/src",
    "crates/local/src",
    "crates/bench/src",
    "xtask/src",
];

/// One file's scan output: direct violations plus the borrow-order edges
/// that feed crate-level cycle detection.
struct FileScan {
    violations: Vec<Violation>,
    edges: Vec<borrows::Edge>,
}

/// Lexes and scans one file's source text.
fn scan_source(path: &Path, source: &str) -> FileScan {
    let lexed = lex::lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    rules::scan_token_rules(path, &lexed, &lines, &mut violations);
    let fb = borrows::analyze_file(path, &lexed, &lines);
    violations.extend(fb.violations);
    FileScan {
        violations,
        edges: fb.edges,
    }
}

/// Recursively collects every `.rs` file under `dir`, sorted.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full lint over the workspace rooted at `root`. Borrow-order
/// edges are unioned per linted directory (≈ per crate) before cycle
/// detection — a lock-order discipline is a crate-level property.
fn lint(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for dir in LINTED_DIRS {
        let dirp = root.join(dir);
        let mut files = Vec::new();
        collect_rs(&dirp, &mut files).map_err(|e| format!("cannot scan {dirp:?}: {e}"))?;
        let mut edges = Vec::new();
        for f in files {
            let source =
                std::fs::read_to_string(&f).map_err(|e| format!("cannot read {f:?}: {e}"))?;
            let scan = scan_source(&f, &source);
            violations.extend(scan.violations);
            edges.extend(scan.edges);
        }
        violations.extend(borrows::cycle_violations(&edges));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

/// Root-relative path with forward slashes (stable across platforms for
/// the JSON report).
fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report: version 1, violations sorted by
/// (file, line, rule) with root-relative forward-slash paths. The shape is
/// covered by the `json_golden` fixture — treat any change as a format
/// version bump.
fn render_json(root: &Path, violations: &[Violation]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"text\": \"{}\"}}",
            json_escape(&rel_path(root, &v.file)),
            v.line,
            v.rule,
            json_escape(v.message.as_str()),
            json_escape(&v.text)
        ));
    }
    if violations.is_empty() {
        s.push(']');
    } else {
        s.push_str("\n  ]");
    }
    s.push_str("\n}\n");
    s
}

/// Runs the seeded-corruption fixtures under `xtask/fixtures/`. Each
/// fixture's first line is a manifest — `// expect: rule-a, rule-b` or
/// `// expect: clean` — and the analyzer must fire exactly that rule set.
/// The `json_golden` fixture additionally pins the `--json` byte format.
/// Returns the number of fixtures checked.
fn selftest(root: &Path) -> Result<usize, String> {
    let xtask_dir = root.join("xtask");
    let fixtures = xtask_dir.join("fixtures");
    let mut files = Vec::new();
    collect_rs(&fixtures, &mut files).map_err(|e| format!("cannot scan {fixtures:?}: {e}"))?;
    if files.is_empty() {
        return Err(format!("no fixtures found under {fixtures:?}"));
    }
    for f in &files {
        let source = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f:?}: {e}"))?;
        let first = source.lines().next().unwrap_or("");
        let Some(manifest) = first.strip_prefix("// expect:") else {
            return Err(format!(
                "{}: first line must be `// expect: ...`",
                f.display()
            ));
        };
        let want: BTreeSet<&str> = if manifest.trim() == "clean" {
            BTreeSet::new()
        } else {
            let set: BTreeSet<&str> = manifest.split(',').map(str::trim).collect();
            for r in &set {
                if rules::rule(r).is_none() {
                    return Err(format!("{}: unknown rule `{r}` in manifest", f.display()));
                }
            }
            set
        };
        let scan = scan_source(f, &source);
        let mut fired: BTreeSet<&str> = scan.violations.iter().map(|v| v.rule).collect();
        fired.extend(
            borrows::cycle_violations(&scan.edges)
                .iter()
                .map(|v| v.rule),
        );
        if fired != want {
            return Err(format!(
                "{}: expected rules {want:?}, analyzer fired {fired:?}",
                f.display()
            ));
        }
        // The JSON golden pins the report format byte-for-byte.
        if f.file_name().is_some_and(|n| n == "json_golden.rs") {
            let mut violations = scan.violations;
            violations.extend(borrows::cycle_violations(&scan.edges));
            violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
            let got = render_json(&xtask_dir, &violations);
            let golden_path = fixtures.join("json_golden.expected.json");
            let golden = std::fs::read_to_string(&golden_path)
                .map_err(|e| format!("cannot read {golden_path:?}: {e}"))?;
            if got != golden {
                return Err(format!(
                    "json_golden: report drifted from {}.\n--- expected ---\n{golden}\n--- got ---\n{got}",
                    golden_path.display()
                ));
            }
        }
    }
    Ok(files.len())
}

/// xtask lives at `<root>/xtask`, so the workspace root is its manifest
/// directory's parent.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut only: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--rule" => match it.next() {
                Some(name) => match rules::rule(name) {
                    Some(r) => only.push(r.name),
                    None => {
                        let known: Vec<&str> = rules::RULES.iter().map(|r| r.name).collect();
                        eprintln!(
                            "xtask lint: unknown rule '{name}' (known: {})",
                            known.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("xtask lint: --rule needs a rule name");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag '{other}' (available: --json, --rule <name>)");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    let mut violations = match lint(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    if !only.is_empty() {
        violations.retain(|v| only.contains(&v.rule));
    }
    if json {
        print!("{}", render_json(&root, &violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} rules over {})",
            rules::RULES.len(),
            LINTED_DIRS.join(", ")
        );
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!(
            "{}:{}: [{}] {}\n    {}",
            rel_path(&root, &v.file),
            v.line,
            v.rule,
            v.message,
            v.text
        );
    }
    eprintln!(
        "xtask lint: {} violation(s); exempt safe uses with \
         `// lint: allow(<rule>)` on or directly above the line \
         (or `lint: allow-file(<rule>)` for whole-file exemptions), \
         with a written justification",
        violations.len()
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("lint-selftest") => match selftest(&workspace_root()) {
            Ok(n) => {
                println!("xtask lint-selftest: {n} fixtures behave as seeded");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xtask lint-selftest: {e}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown task '{other}' (available: lint, lint-selftest)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <lint|lint-selftest>");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique temp directory removed on drop — panic-safe, and keyed on
    /// pid + a process-wide counter so concurrent tests (or a stale dir
    /// from a previous crashed run under a recycled pid) cannot collide.
    struct TempTree(PathBuf);

    impl TempTree {
        fn new(label: &str) -> Self {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("xtask-{label}-{}-{n}", std::process::id()));
            // A leftover under the same name would pollute the scan.
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create temp tree");
            Self(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn scan_str(source: &str) -> Vec<Violation> {
        let scan = scan_source(Path::new("test.rs"), source);
        let mut v = scan.violations;
        v.extend(borrows::cycle_violations(&scan.edges));
        v
    }

    #[test]
    fn violation_carries_location_and_rule() {
        let src = "fn f() {}\nlet t = Instant::now();\n";
        let hits = scan_str(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].rule, "wall-clock");
    }

    #[test]
    fn token_and_borrow_rules_combine_in_one_scan() {
        let src = "fn f(c: &Shared<P>) {\n\
                   let g = c.borrow();\n\
                   let h = c.borrow();\n\
                   println!(\"overlap\");\n\
                   }";
        let rules_hit: BTreeSet<&str> = scan_str(src).iter().map(|v| v.rule).collect();
        assert_eq!(
            rules_hit,
            BTreeSet::from(["borrow-overlap", "adhoc-telemetry"])
        );
    }

    #[test]
    fn seeded_violation_in_a_linted_tree_fails_the_lint() {
        // End-to-end negative test: a fresh tree shaped like the workspace
        // with one bad file must come back non-empty.
        let tree = TempTree::new("lint-negative");
        for d in LINTED_DIRS {
            std::fs::create_dir_all(tree.path().join(d)).expect("create temp tree");
        }
        std::fs::write(
            tree.path().join("crates/sim/src/bad.rs"),
            "use std::time::SystemTime;\nfn now() { SystemTime::now(); }\n",
        )
        .expect("write seeded violation");
        let violations = lint(tree.path()).expect("scan succeeds");
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.rule == "wall-clock"));
    }

    #[test]
    fn borrow_order_cycles_union_across_files_in_one_crate() {
        let tree = TempTree::new("lint-order");
        for d in LINTED_DIRS {
            std::fs::create_dir_all(tree.path().join(d)).expect("create temp tree");
        }
        // Opposite nesting orders in two *different* files of one crate.
        std::fs::write(
            tree.path().join("crates/sim/src/a.rs"),
            "fn a(&self) { let g = self.cache.borrow_mut(); self.queue.borrow().len(); }\n",
        )
        .expect("write");
        std::fs::write(
            tree.path().join("crates/sim/src/b.rs"),
            "fn b(&self) { let g = self.queue.borrow_mut(); self.cache.borrow().len(); }\n",
        )
        .expect("write");
        let violations = lint(tree.path()).expect("scan succeeds");
        assert!(
            violations.iter().any(|v| v.rule == "borrow-order"),
            "{violations:?}"
        );
    }

    #[test]
    fn opposite_orders_in_different_crates_are_not_a_cycle() {
        let tree = TempTree::new("lint-order-crates");
        for d in LINTED_DIRS {
            std::fs::create_dir_all(tree.path().join(d)).expect("create temp tree");
        }
        std::fs::write(
            tree.path().join("crates/sim/src/a.rs"),
            "fn a(&self) { let g = self.cache.borrow_mut(); self.queue.borrow().len(); }\n",
        )
        .expect("write");
        std::fs::write(
            tree.path().join("crates/cloud/src/b.rs"),
            "fn b(&self) { let g = self.queue.borrow_mut(); self.cache.borrow().len(); }\n",
        )
        .expect("write");
        let violations = lint(tree.path()).expect("scan succeeds");
        assert_eq!(violations, Vec::new());
    }

    #[test]
    fn json_report_is_stable_and_escaped() {
        let root = Path::new("/ws");
        let violations = vec![Violation {
            file: PathBuf::from("/ws/crates/sim/src/bad.rs"),
            line: 3,
            rule: "adhoc-telemetry",
            message: "substrates report through the structured Tracer".into(),
            text: "println!(\"t = {:?}\", now);".into(),
        }];
        let got = render_json(root, &violations);
        assert_eq!(
            got,
            "{\n  \"version\": 1,\n  \"violations\": [\n    \
             {\"file\": \"crates/sim/src/bad.rs\", \"line\": 3, \"rule\": \"adhoc-telemetry\", \
             \"message\": \"substrates report through the structured Tracer\", \
             \"text\": \"println!(\\\"t = {:?}\\\", now);\"}\n  ]\n}\n"
        );
        assert_eq!(
            render_json(root, &[]),
            "{\n  \"version\": 1,\n  \"violations\": []\n}\n"
        );
    }

    #[test]
    fn seeded_fixtures_fire_their_rules() {
        // The same check `cargo xtask lint-selftest` runs in CI: every
        // seeded-corruption fixture must fire exactly its manifest rules,
        // and the JSON golden must match byte-for-byte.
        let n = selftest(&workspace_root()).expect("fixtures behave");
        assert!(n >= 8, "expected the full fixture suite, found {n}");
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        let violations = lint(&workspace_root()).expect("scan succeeds");
        assert_eq!(violations, Vec::new());
    }
}
