//! `cargo xtask` — workspace development tasks.
//!
//! The only task so far is `lint`, a determinism pass over the
//! simulation-facing crates (`crates/sim`, `crates/cloud`, `crates/core`,
//! `crates/dag`, `crates/serve` — the last two cover the fusion rewriter
//! and the Pareto candidate sweep, where enumeration order is part of the
//! bit-identical-front guarantee).
//! Simulated results must be a pure function of configuration + seed, so
//! source constructs whose behaviour varies run-to-run are banned there:
//!
//! * **wall-clock** — `std::time::Instant` / `std::time::SystemTime`:
//!   wall-clock reads differ per run; simulated time comes from the event
//!   queue (`mashup_sim::SimTime`) only.
//! * **hash-collections** — `std::collections::{HashMap, HashSet}`: their
//!   iteration order is randomized per process, so any order-dependent use
//!   leaks nondeterminism. Use `BTreeMap`/`BTreeSet`, or index by dense
//!   ids.
//! * **ambient-rng** — `thread_rng`, `rand::random`, `from_entropy`,
//!   `OsRng`: randomness must flow from the seeded `SeedSource` streams.
//! * **adhoc-telemetry** — `println!` / `eprintln!` / `dbg!`: the simulated
//!   substrates must report through the structured flight recorder
//!   (`mashup_sim::Tracer`), not ad-hoc prints that bypass levels,
//!   determinism guarantees, and the exporters.
//! * **no-rc** — `std::rc::Rc`: the engine is `Send` end-to-end so whole
//!   runs can shard across worker threads (the planning service, the
//!   figure sweep). An `Rc` anywhere in the world state would silently pin
//!   every type that transitively holds it back to one thread; share state
//!   through `mashup_sim::Shared` (an `Arc<AtomicRefCell<..>>`) or `Arc`.
//!
//! A genuinely safe use (a keyed-lookup-only map, an observability timer)
//! is exempted by a `// lint: allow(<rule>)` comment on the same line or
//! the directly preceding comment line, ideally with a justification.
//! The lint is textual by design: it needs no dependencies, runs in
//! milliseconds, and a substring match is the right sensitivity for
//! constructs that should be rare enough to justify a comment each.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One banned-construct family.
struct Rule {
    /// Name used in `lint: allow(<name>)` escapes and in reports.
    name: &'static str,
    /// Substrings whose presence flags a line.
    patterns: &'static [&'static str],
    /// One-line rationale shown with each violation.
    why: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        patterns: &[
            "std::time::Instant",
            "std::time::SystemTime",
            "Instant::now",
            "SystemTime::now",
        ],
        why: "simulated time must come from the event queue, not the host clock",
    },
    Rule {
        name: "hash-collections",
        patterns: &["HashMap", "HashSet"],
        why: "hash iteration order is randomized per process; use BTreeMap/BTreeSet",
    },
    Rule {
        name: "ambient-rng",
        patterns: &["thread_rng", "rand::random", "from_entropy", "OsRng"],
        why: "randomness must flow from the seeded SeedSource streams",
    },
    Rule {
        name: "adhoc-telemetry",
        // "println!" also substring-matches "eprintln!".
        patterns: &["println!", "dbg!"],
        why: "substrates report through the structured Tracer, not ad-hoc prints",
    },
    Rule {
        name: "no-rc",
        // Import forms plus the constructor; bare `Rc<..>` in prose (the
        // migration notes in shared.rs) stays legal, but any real use needs
        // one of these to compile.
        patterns: &["std::rc::Rc", "Rc::new("],
        why:
            "Rc pins engine state to one thread; use mashup_sim::Shared (Arc<AtomicRefCell>) or Arc",
    },
];

/// The crates whose `src/` trees the determinism lint covers.
const LINTED_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/cloud/src",
    "crates/core/src",
    "crates/dag/src",
    "crates/serve/src",
];

/// A single flagged line.
#[derive(Debug, PartialEq)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    text: String,
}

/// Whether `line` (or the directly preceding comment line) carries the
/// escape hatch for `rule`.
fn allowed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    if lines[idx].contains(&marker) {
        return true;
    }
    idx > 0 && {
        let prev = lines[idx - 1].trim_start();
        prev.starts_with("//") && prev.contains(&marker)
    }
}

/// Scans one file's source text, appending violations.
fn scan_source(path: &Path, source: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = source.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        for rule in RULES {
            if rule.patterns.iter().any(|p| line.contains(p)) && !allowed(&lines, idx, rule.name) {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    rule: rule.name,
                    text: line.trim().to_string(),
                });
            }
        }
    }
}

/// Recursively scans every `.rs` file under `dir`.
fn scan_dir(dir: &Path, out: &mut Vec<Violation>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            scan_dir(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source = std::fs::read_to_string(&path)?;
            scan_source(&path, &source, out);
        }
    }
    Ok(())
}

/// Runs the determinism lint over the workspace rooted at `root`.
fn lint(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for dir in LINTED_DIRS {
        let dir = root.join(dir);
        scan_dir(&dir, &mut violations).map_err(|e| format!("cannot scan {dir:?}: {e}"))?;
    }
    Ok(violations)
}

fn rule(name: &str) -> &'static Rule {
    RULES.iter().find(|r| r.name == name).expect("known rule")
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1);
    match task.as_deref() {
        Some("lint") => {
            // xtask lives at <root>/xtask, so the workspace root is its
            // manifest directory's parent.
            let root = Path::new(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .expect("xtask sits inside the workspace")
                .to_path_buf();
            let violations = match lint(&root) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    return ExitCode::from(2);
                }
            };
            if violations.is_empty() {
                println!(
                    "xtask lint: clean ({} rules over {})",
                    RULES.len(),
                    LINTED_DIRS.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            for v in &violations {
                let rel = v.file.strip_prefix(&root).unwrap_or(&v.file);
                eprintln!(
                    "{}:{}: [{}] {}\n    {}",
                    rel.display(),
                    v.line,
                    v.rule,
                    rule(v.rule).why,
                    v.text
                );
            }
            eprintln!(
                "xtask lint: {} violation(s); exempt safe uses with \
                 `// lint: allow(<rule>)` on or directly above the line",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("xtask: unknown task '{other}' (available: lint)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask <lint>");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(source: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        scan_source(Path::new("test.rs"), source, &mut out);
        out
    }

    #[test]
    fn each_rule_fires_on_a_seeded_violation() {
        let seeded = [
            ("wall-clock", "let t = std::time::Instant::now();"),
            ("wall-clock", "let t = SystemTime::now();"),
            ("hash-collections", "use std::collections::HashMap;"),
            (
                "hash-collections",
                "let s: HashSet<u32> = Default::default();",
            ),
            ("ambient-rng", "let mut rng = thread_rng();"),
            ("ambient-rng", "let x: f64 = rand::random();"),
            ("adhoc-telemetry", "println!(\"scheduling {task}\");"),
            ("adhoc-telemetry", "eprintln!(\"warn: retry {n}\");"),
            ("adhoc-telemetry", "dbg!(&queue.len());"),
            ("no-rc", "use std::rc::Rc;"),
            (
                "no-rc",
                "let state = Rc::new(RefCell::new(World::default()));",
            ),
        ];
        for (rule, line) in seeded {
            let hits = scan_str(line);
            assert!(
                hits.iter().any(|v| v.rule == rule),
                "{rule} did not fire on {line:?}: {hits:?}"
            );
        }
    }

    #[test]
    fn clean_source_has_no_violations() {
        let src = "use std::collections::BTreeMap;\nlet t = sim.now();\n";
        assert_eq!(scan_str(src), Vec::new());
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "let m: HashMap<u32, u32> = x; // lint: allow(hash-collections)\n";
        assert_eq!(scan_str(src), Vec::new());
    }

    #[test]
    fn preceding_comment_allow_suppresses() {
        let src = "// keyed lookups only; lint: allow(hash-collections)\n\
                   use std::collections::HashMap;\n";
        assert_eq!(scan_str(src), Vec::new());
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let src = "// lint: allow(wall-clock)\nuse std::collections::HashMap;\n";
        assert_eq!(scan_str(src).len(), 1);
    }

    #[test]
    fn allow_on_a_distant_line_does_not_suppress() {
        let src = "// lint: allow(hash-collections)\n\nuse std::collections::HashMap;\n";
        assert_eq!(scan_str(src).len(), 1);
    }

    #[test]
    fn violation_carries_location_and_rule() {
        let src = "fn f() {}\nlet t = Instant::now();\n";
        let hits = scan_str(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].rule, "wall-clock");
    }

    #[test]
    fn seeded_violation_in_a_linted_tree_fails_the_lint() {
        // End-to-end negative test: a fresh tree shaped like the workspace
        // with one bad file must come back non-empty.
        let dir = std::env::temp_dir().join(format!("xtask-lint-negative-{}", std::process::id()));
        let sim_src = dir.join("crates/sim/src");
        std::fs::create_dir_all(&sim_src).expect("create temp tree");
        for d in [
            "crates/cloud/src",
            "crates/core/src",
            "crates/dag/src",
            "crates/serve/src",
        ] {
            std::fs::create_dir_all(dir.join(d)).expect("create temp tree");
        }
        std::fs::write(
            sim_src.join("bad.rs"),
            "use std::time::SystemTime;\nfn now() { SystemTime::now(); }\n",
        )
        .expect("write seeded violation");
        let violations = lint(&dir).expect("scan succeeds");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.rule == "wall-clock"));
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("workspace root");
        let violations = lint(root).expect("scan succeeds");
        assert_eq!(violations, Vec::new());
    }
}
