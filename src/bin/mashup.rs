//! `mashup` — command-line front end for the workflow engine.
//!
//! ```text
//! mashup validate <workflow.json>
//! mashup analyze  <workflow.json|1000Genome|SRAsearch|Epigenomics> [--nodes N]
//! mashup dot      <workflow.json>
//! mashup plan     <workflow.json|1000Genome|SRAsearch|Epigenomics> [--nodes N] [--objective time|expense|both] [--probe-sharing]
//! mashup run      <workflow...>   [--nodes N] [--strategy mashup|wo-pdc|traditional|serverless|pegasus|kepler]
//! mashup compare  <workflow...>   [--nodes N]
//! mashup trace    <workflow...>   [--nodes N] [--strategy S] [--format jsonl|chrome] [--out FILE] [--verbose] [--check]
//! mashup pareto   <workflow...>   [--nodes N] [--budget N] [--jobs N] [--out FILE]
//! mashup chaos    <workflow...>   [--nodes N] [--seed S] [--profile preemption|storage|mixed] [--horizon SECS] [--straggler-factor F] [--strategy S] [--check]
//! mashup serve    [--workers N] [--queue-depth N]
//! mashup load-test [--requests N,N,...] [--parallelism N] [--workers N] [--no-scaling] [--out FILE] [--csv FILE]
//! ```
//!
//! Built-in workflow names load the paper's benchmarks; anything else is
//! treated as a path to a JSON workflow definition (see
//! `examples/custom_workflow.rs` for the format).

use mashup::prelude::*;

fn load_workflow(spec: &str) -> Workflow {
    match spec {
        "1000Genome" => genome1000::workflow(),
        "SRAsearch" => srasearch::workflow(),
        "Epigenomics" => epigenomics::workflow(),
        path => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read '{path}': {e}")));
            mashup::dag::from_json(&json)
                .unwrap_or_else(|e| die(&format!("invalid workflow '{path}': {e}")))
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mashup: {msg}");
    std::process::exit(1)
}

/// Exits with the analyzer's pretty-rendered refusal report.
fn die_diagnosed(err: &AnalysisError) -> ! {
    eprintln!("mashup: static analysis refused the input");
    eprintln!("{}", render_pretty(&err.diagnostics));
    std::process::exit(1)
}

struct Args {
    workflow: String,
    nodes: usize,
    objective: Objective,
    strategy: String,
    format: String,
    out: Option<String>,
    verbose: bool,
    check: bool,
    probe_sharing: bool,
}

fn parse_args(mut rest: std::env::Args) -> Args {
    let workflow = rest
        .next()
        .unwrap_or_else(|| die("missing workflow argument"));
    let mut args = Args {
        workflow,
        nodes: 8,
        objective: Objective::ExecutionTime,
        strategy: "mashup".into(),
        format: "jsonl".into(),
        out: None,
        verbose: false,
        check: false,
        probe_sharing: false,
    };
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--nodes" => {
                args.nodes = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--nodes needs a positive integer"));
            }
            "--objective" => {
                args.objective = match rest.next().as_deref() {
                    Some("time") => Objective::ExecutionTime,
                    Some("expense") => Objective::Expense,
                    Some("both") => Objective::Both,
                    other => die(&format!("unknown objective {other:?}")),
                };
            }
            "--strategy" => {
                args.strategy = rest
                    .next()
                    .unwrap_or_else(|| die("--strategy needs a value"));
            }
            "--format" => {
                args.format = match rest.next().as_deref() {
                    Some("jsonl") => "jsonl".into(),
                    Some("chrome") => "chrome".into(),
                    other => die(&format!("unknown trace format {other:?}")),
                };
            }
            "--out" => {
                args.out = Some(rest.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--verbose" => args.verbose = true,
            "--check" => args.check = true,
            "--probe-sharing" => args.probe_sharing = true,
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    args
}

fn print_report(label: &str, r: &WorkflowReport) {
    println!(
        "{:<12} {:>10.1}s   ${:<8.4} (vm ${:.4} + faas ${:.4} + storage ${:.4})",
        label,
        r.makespan_secs,
        r.expense.total(),
        r.expense.vm_dollars,
        r.expense.faas_dollars,
        r.expense.storage_dollars
    );
}

fn main() {
    let mut argv = std::env::args();
    let _bin = argv.next();
    let Some(cmd) = argv.next() else {
        die(
            "usage: mashup <validate|analyze|dot|plan|run|compare|trace|chaos|serve|load-test> \
             [workflow] [flags]",
        )
    };
    match cmd.as_str() {
        "validate" => {
            let spec = argv.next().unwrap_or_else(|| die("missing workflow"));
            let w = load_workflow(&spec);
            println!(
                "'{}' is valid: {} tasks, {} components, {} phases, peak width {}",
                w.name,
                w.task_count(),
                w.component_count(),
                w.phases.len(),
                w.max_width()
            );
        }
        "dot" => {
            let spec = argv.next().unwrap_or_else(|| die("missing workflow"));
            let w = load_workflow(&spec);
            print!("{}", mashup::dag::to_dot(&w));
        }
        "analyze" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            match mashup::engine::preflight(&cfg, &w, None) {
                Ok(warnings) => {
                    print!("{}", render_pretty(&warnings));
                }
                Err(e) => die_diagnosed(&e),
            }
        }
        "plan" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            // --probe-sharing collapses serverless probes across tasks of
            // the same code family — one probe per family instead of one
            // per task, the cheap mode for very wide workflows.
            let pdc = Pdc::new(cfg)
                .with_objective(args.objective)
                .with_probe_sharing(args.probe_sharing)
                .try_decide(&w)
                .unwrap_or_else(|e| die_diagnosed(&e));
            println!(
                "plan for '{}' on {} nodes ({} sub-clusters):",
                w.name, args.nodes, pdc.subclusters
            );
            for d in &pdc.decisions {
                let reason = d
                    .forced_vm_reason
                    .as_deref()
                    .map(|r| format!("  [{r}]"))
                    .unwrap_or_default();
                println!(
                    "  {:<20} C={:<5} T_vm={:>9.1}s  T_sl≈{:>9.1}s  -> {}{}",
                    d.name, d.components, d.t_vm_secs, d.t_serverless_est_secs, d.platform, reason
                );
            }
            println!(
                "profiling cost: ${:.4} (amortized over production runs)",
                pdc.profiling_expense.total()
            );
        }
        "run" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            let report = match args.strategy.as_str() {
                "mashup" => {
                    Mashup::new(cfg)
                        .try_run(&w)
                        .unwrap_or_else(|e| die_diagnosed(&e))
                        .report
                }
                "wo-pdc" => Mashup::new(cfg)
                    .try_run_without_pdc(&w)
                    .unwrap_or_else(|e| die_diagnosed(&e)),
                "traditional" => run_traditional_tuned(&cfg, &w),
                "serverless" => run_serverless_only(&cfg, &w),
                "pegasus" => run_pegasus(&cfg, &w),
                "kepler" => run_kepler(&cfg, &w),
                other => die(&format!("unknown strategy '{other}'")),
            };
            print_report(&args.strategy, &report);
            for t in &report.tasks {
                println!(
                    "  {:<20} {:<10} {:>8.1}s  (cold {:>5.1}s, io {:>7.1}s, {} ckpts)",
                    t.name,
                    t.platform.to_string(),
                    t.makespan_secs(),
                    t.cold_start_secs,
                    t.io_secs,
                    t.checkpoints
                );
            }
            println!("\n{}", report.render_gantt(60));
        }
        "trace" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            let tracer = if args.verbose {
                Tracer::verbose()
            } else {
                Tracer::new()
            };
            let report = match args.strategy.as_str() {
                "mashup" => {
                    Mashup::new(cfg.clone())
                        .with_tracer(tracer.clone())
                        .try_run(&w)
                        .unwrap_or_else(|e| die_diagnosed(&e))
                        .report
                }
                "wo-pdc" => Mashup::new(cfg.clone())
                    .with_tracer(tracer.clone())
                    .try_run_without_pdc(&w)
                    .unwrap_or_else(|e| die_diagnosed(&e)),
                "traditional" => run_traditional_tuned_traced(&cfg, &w, &tracer),
                "serverless" => run_serverless_only_traced(&cfg, &w, &tracer),
                "pegasus" => run_pegasus_traced(&cfg, &w, &tracer),
                "kepler" => run_kepler_traced(&cfg, &w, &tracer),
                other => die(&format!("unknown strategy '{other}'")),
            };
            let records = tracer.take();
            let body = match args.format.as_str() {
                "chrome" => mashup::sim::trace::to_chrome_trace(&records),
                _ => mashup::sim::trace::to_jsonl(&records),
            };
            match &args.out {
                Some(path) => {
                    std::fs::write(path, &body)
                        .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}")));
                    eprintln!(
                        "wrote {} records ({} format) to {path}",
                        records.len(),
                        args.format
                    );
                }
                None => print!("{body}"),
            }
            if args.check {
                let violations = mashup::engine::trace::check(&cfg, &w, &report, &records);
                if violations.is_empty() {
                    eprintln!("trace check: all invariants hold");
                } else {
                    for v in &violations {
                        eprintln!("trace check: {v}");
                    }
                    std::process::exit(1);
                }
            }
        }
        "compare" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            println!("'{}' on {} nodes:", w.name, args.nodes);
            let traditional = run_traditional_tuned(&cfg, &w);
            print_report("traditional", &traditional);
            print_report("serverless", &run_serverless_only(&cfg, &w));
            print_report("pegasus", &run_pegasus(&cfg, &w));
            print_report("kepler", &run_kepler(&cfg, &w));
            let mashup = Mashup::new(cfg).run(&w).report;
            print_report("mashup", &mashup);
            println!(
                "\nmashup vs traditional: {:.1}% time, {:.1}% expense",
                improvement_pct(mashup.makespan_secs, traditional.makespan_secs),
                improvement_pct(mashup.expense.total(), traditional.expense.total())
            );
        }
        "pareto" => run_pareto(argv),
        "chaos" => run_chaos(argv),
        "serve" => run_serve(argv),
        "load-test" => run_load_test(argv),
        other => die(&format!("unknown command '{other}'")),
    }
}

/// `mashup pareto`: search the fusion × right-sizing plan space and print
/// the time/expense Pareto front (see `mashup-serve`'s `pareto` module).
fn run_pareto(mut argv: std::env::Args) {
    let spec = argv.next().unwrap_or_else(|| die("missing workflow"));
    let mut nodes = 8usize;
    let mut budget = 200usize;
    let mut out: Option<String> = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--nodes" => {
                nodes = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--nodes needs a positive integer"));
            }
            "--budget" => {
                budget = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&b| b >= 1)
                    .unwrap_or_else(|| die("--budget needs a positive integer"));
            }
            "--jobs" => {
                let jobs = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a positive integer"));
                mashup::serve::set_jobs(jobs);
            }
            "--out" => out = Some(argv.next().unwrap_or_else(|| die("--out needs a path"))),
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    let w = load_workflow(&spec);
    let cfg = MashupConfig::aws(nodes);
    let started = std::time::Instant::now();
    let outcome = mashup::serve::pareto_sweep(&cfg, &w, budget);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "Pareto front for '{}' on {nodes} nodes (budget {budget} candidates):",
        w.name
    );
    println!("{:<44} {:>10} {:>11}", "candidate", "makespan", "expense");
    for p in &outcome.front {
        println!(
            "{:<44} {:>9.1}s  ${:<10.4}",
            p.label, p.makespan_secs, p.expense_dollars
        );
    }
    let s = &outcome.stats;
    eprintln!(
        "[pareto] {} generated, {} deduped, {} pruned, {} evaluated, {} coalesced, \
         {} executed in {wall:.2}s ({:.1} candidates/s)",
        s.generated,
        s.deduped,
        s.pruned,
        s.evaluated,
        s.coalesced,
        s.executed,
        s.evaluated as f64 / wall.max(1e-9),
    );
    let c = &s.cache;
    eprintln!(
        "[plan-cache] calibration {}h/{}m  vm-profile {}h/{}m  probes {}h/{}m  \
         phase-profiles {}h/{}m  ({} entries, {:.1}% hits overall)",
        c.calibration.hits,
        c.calibration.misses,
        c.vm_profile.hits,
        c.vm_profile.misses,
        c.probes.hits,
        c.probes.misses,
        c.phase_profiles.hits,
        c.phase_profiles.misses,
        c.entries(),
        if c.hits() + c.misses() == 0 {
            0.0
        } else {
            c.hits() as f64 * 100.0 / (c.hits() + c.misses()) as f64
        },
    );
    if let Some(path) = &out {
        // Drop the cache section from the artifact: its miss-side
        // compute_secs are wall-clock timings, so keeping them would make
        // the file vary across worker counts. The front and every search
        // counter are deterministic; cache telemetry lives on stderr.
        let mut value = serde::Serialize::to_value(&outcome);
        if let serde::Value::Object(fields) = &mut value {
            for (k, v) in fields.iter_mut() {
                if k == "stats" {
                    if let serde::Value::Object(stats) = v {
                        stats.retain(|(k, _)| k != "cache");
                    }
                }
            }
        }
        let body = serde_json::to_string_pretty(&value)
            .unwrap_or_else(|e| die(&format!("serialize: {e}")));
        std::fs::write(path, body + "\n")
            .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}")));
        eprintln!("wrote JSON front to {path}");
    }
}

/// `mashup chaos`: executes the workflow three times — fault-free, then
/// under a seeded fault schedule with the static plan riding the faults
/// out, then with the online replanning controller on — and prints the
/// comparison plus a chaos event summary. `--check` replays both chaos
/// traces through the trace-invariant oracle and exits nonzero on any
/// violation. Everything is derived from the seed: rerunning the command
/// reproduces every fault, retry, and replan bit-identically.
fn run_chaos(mut argv: std::env::Args) {
    let spec = argv.next().unwrap_or_else(|| die("missing workflow"));
    let mut nodes = 16usize;
    let mut seed = 1u64;
    let mut profile = "preemption".to_string();
    let mut horizon: Option<f64> = None;
    let mut straggler_factor = 0.0f64;
    let mut strategy = "mashup".to_string();
    let mut check = false;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--nodes" => {
                nodes = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--nodes needs a positive integer"));
            }
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--profile" => {
                profile = match argv.next().as_deref() {
                    Some(p @ ("preemption" | "storage" | "mixed")) => p.into(),
                    other => die(&format!("unknown fault profile {other:?}")),
                };
            }
            "--horizon" => {
                horizon = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&h: &f64| h > 0.0)
                        .unwrap_or_else(|| die("--horizon needs positive seconds")),
                );
            }
            "--straggler-factor" => {
                straggler_factor = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--straggler-factor needs a number"));
            }
            "--strategy" => {
                strategy = argv
                    .next()
                    .unwrap_or_else(|| die("--strategy needs a value"));
            }
            "--check" => check = true,
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    let w = load_workflow(&spec);
    let cfg = MashupConfig::aws(nodes);
    let run = |cfg: &MashupConfig, tracer: &Tracer| -> WorkflowReport {
        match strategy.as_str() {
            "mashup" => {
                Mashup::new(cfg.clone())
                    .with_tracer(tracer.clone())
                    .try_run(&w)
                    .unwrap_or_else(|e| die_diagnosed(&e))
                    .report
            }
            "wo-pdc" => Mashup::new(cfg.clone())
                .with_tracer(tracer.clone())
                .try_run_without_pdc(&w)
                .unwrap_or_else(|e| die_diagnosed(&e)),
            "traditional" => run_traditional_tuned_traced(cfg, &w, tracer),
            "serverless" => run_serverless_only_traced(cfg, &w, tracer),
            "pegasus" => run_pegasus_traced(cfg, &w, tracer),
            "kepler" => run_kepler_traced(cfg, &w, tracer),
            other => die(&format!("unknown strategy '{other}'")),
        }
    };

    // The fault-free reference also sizes the default fault horizon.
    let base = run(&cfg, &Tracer::off());
    let horizon = horizon.unwrap_or(base.makespan_secs);
    let prof = match profile.as_str() {
        "storage" => FaultProfile::storage(horizon),
        "mixed" => FaultProfile::mixed(horizon),
        _ => FaultProfile::preemption(horizon),
    };
    let plan = FaultPlan::generate(seed, &prof, nodes, cfg.cluster.instance.price_per_hour);
    println!(
        "'{}' on {nodes} nodes, {profile} faults (seed {seed}, horizon {horizon:.0}s): \
         {} scheduled",
        w.name,
        plan.faults.len()
    );

    let static_cfg = cfg.clone().with_chaos(ChaosSpec::new(plan.clone()));
    let adaptive_cfg = cfg.clone().with_chaos(
        ChaosSpec::new(plan)
            .with_adaptive(true)
            .with_straggler_factor(straggler_factor),
    );
    let s_tracer = Tracer::new();
    let s_report = run(&static_cfg, &s_tracer);
    let s_records = s_tracer.take();
    let a_tracer = Tracer::new();
    let a_report = run(&adaptive_cfg, &a_tracer);
    let a_records = a_tracer.take();

    print_report("fault-free", &base);
    print_report("static", &s_report);
    print_report("adaptive", &a_report);
    println!(
        "adaptive vs static: {:.1}% time, {:.1}% expense",
        improvement_pct(a_report.makespan_secs, s_report.makespan_secs),
        improvement_pct(a_report.expense.total(), s_report.expense.total())
    );
    for (label, records) in [("static", &s_records), ("adaptive", &a_records)] {
        let count = |f: fn(&TraceEvent) -> bool| records.iter().filter(|r| f(&r.event)).count();
        println!(
            "{label:<9} preemptions {}, fault windows {}, comp retries {}, \
             storage retries {}, replans {}",
            count(|e| matches!(e, TraceEvent::SpotPreempt { .. })),
            count(|e| matches!(e, TraceEvent::FaultInjected { .. })),
            count(|e| matches!(e, TraceEvent::CompRetry { .. })),
            count(|e| matches!(e, TraceEvent::FaultRetry { .. })),
            count(|e| matches!(e, TraceEvent::Replan { .. })),
        );
    }
    if check {
        let mut bad = 0usize;
        for (label, run_cfg, report, records) in [
            ("static", &static_cfg, &s_report, &s_records),
            ("adaptive", &adaptive_cfg, &a_report, &a_records),
        ] {
            for v in mashup::engine::trace::check(run_cfg, &w, report, records) {
                eprintln!("trace check [{label}]: {v}");
                bad += 1;
            }
        }
        if bad > 0 {
            std::process::exit(1);
        }
        eprintln!("trace check: all invariants hold on both chaos traces");
    }
}

/// `mashup serve`: JSONL planning service over stdio. Each stdin line is a
/// `PlanRequest`; replies are written to stdout as JSONL in submission
/// order. Admission rejections and parse errors go to stderr; the process
/// exits once stdin closes and the backlog drains.
fn run_serve(mut argv: std::env::Args) {
    use mashup::serve::{PlanRequest, PlanService, ServiceConfig, Ticket};
    let mut workers = mashup::serve::jobs();
    let mut queue_depth = ServiceConfig::default().queue_depth;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--workers" => {
                workers = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--queue-depth" => {
                queue_depth = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queue-depth needs a positive integer"));
            }
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    let service = PlanService::new(ServiceConfig { queue_depth });
    let handles = service.spawn_workers(workers);
    let mut tickets: Vec<Ticket> = Vec::new();
    for (lineno, line) in std::io::stdin().lines().enumerate() {
        let line = line.unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
        if line.trim().is_empty() {
            continue;
        }
        let req: PlanRequest = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mashup serve: line {}: invalid request: {e}", lineno + 1);
                continue;
            }
        };
        match service.submit(req) {
            Ok(t) => tickets.push(t),
            Err(r) => eprintln!("mashup serve: line {}: rejected: {r}", lineno + 1),
        }
    }
    for t in tickets {
        let reply = t.wait();
        println!(
            "{}",
            serde_json::to_string(&reply).unwrap_or_else(|e| die(&format!("serialize: {e}")))
        );
    }
    service.shutdown();
    for h in handles {
        let _ = h.join();
    }
    let stats = service.stats();
    eprintln!(
        "mashup serve: {} completed, {} rejected, cache {:.1}% hits",
        stats.completed,
        stats.rejected,
        {
            let (h, m) = (stats.cache.hits(), stats.cache.misses());
            if h + m == 0 {
                0.0
            } else {
                h as f64 * 100.0 / (h + m) as f64
            }
        }
    );
}

/// `mashup load-test`: the closed-loop sweep (see `mashup-serve`'s
/// `loadtest` module and EXPERIMENTS.md §Planning-service load test).
fn run_load_test(mut argv: std::env::Args) {
    let mut request_counts: Vec<usize> = vec![1, 10, 100, 1000];
    let mut parallelism = 100usize;
    let mut workers = mashup::serve::jobs();
    let mut with_scaling = true;
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--requests" => {
                let list = argv
                    .next()
                    .unwrap_or_else(|| die("--requests needs a comma-separated list"));
                request_counts = list
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad request count '{v}'")))
                    })
                    .collect();
            }
            "--parallelism" => {
                parallelism = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--parallelism needs a positive integer"));
            }
            "--workers" => {
                workers = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--no-scaling" => with_scaling = false,
            "--out" => out = Some(argv.next().unwrap_or_else(|| die("--out needs a path"))),
            "--csv" => csv = Some(argv.next().unwrap_or_else(|| die("--csv needs a path"))),
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    let report = mashup::serve::run_sweep(&request_counts, parallelism, workers, with_scaling);
    println!(
        "closed-loop load test: {} cores, {} workers, up to {} clients",
        report.host_cores, report.workers, report.parallelism
    );
    println!("requests  completed  rejected  throughput     p50      p95      p99");
    for p in &report.points {
        println!(
            "{:>8}  {:>9}  {:>8}  {:>7.1}/s  {:>6.1}ms {:>6.1}ms {:>6.1}ms",
            p.requests, p.completed, p.rejected, p.throughput_rps, p.p50_ms, p.p95_ms, p.p99_ms
        );
    }
    if !report.scaling.is_empty() {
        println!(
            "\nworker scaling (warm cache, {} cores):",
            report.host_cores
        );
        for s in &report.scaling {
            println!(
                "  {:>2} workers  {:>7.1}/s  {:>4.2}x",
                s.workers, s.throughput_rps, s.speedup
            );
        }
    }
    if let Some(path) = &out {
        let body = serde_json::to_string_pretty(&report)
            .unwrap_or_else(|e| die(&format!("serialize: {e}")));
        std::fs::write(path, body + "\n")
            .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}")));
        eprintln!("wrote JSON report to {path}");
    }
    if let Some(path) = &csv {
        std::fs::write(path, report.to_csv())
            .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}")));
        eprintln!("wrote CSV report to {path}");
    }
}
