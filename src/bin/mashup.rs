//! `mashup` — command-line front end for the workflow engine.
//!
//! ```text
//! mashup validate <workflow.json>
//! mashup analyze  <workflow.json|1000Genome|SRAsearch|Epigenomics> [--nodes N]
//! mashup dot      <workflow.json>
//! mashup plan     <workflow.json|1000Genome|SRAsearch|Epigenomics> [--nodes N] [--objective time|expense|both] [--probe-sharing]
//! mashup run      <workflow...>   [--nodes N] [--strategy mashup|wo-pdc|traditional|serverless|pegasus|kepler]
//! mashup compare  <workflow...>   [--nodes N]
//! mashup trace    <workflow...>   [--nodes N] [--strategy S] [--format jsonl|chrome] [--out FILE] [--verbose] [--check]
//! ```
//!
//! Built-in workflow names load the paper's benchmarks; anything else is
//! treated as a path to a JSON workflow definition (see
//! `examples/custom_workflow.rs` for the format).

use mashup::prelude::*;

fn load_workflow(spec: &str) -> Workflow {
    match spec {
        "1000Genome" => genome1000::workflow(),
        "SRAsearch" => srasearch::workflow(),
        "Epigenomics" => epigenomics::workflow(),
        path => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read '{path}': {e}")));
            mashup::dag::from_json(&json)
                .unwrap_or_else(|e| die(&format!("invalid workflow '{path}': {e}")))
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mashup: {msg}");
    std::process::exit(1)
}

/// Exits with the analyzer's pretty-rendered refusal report.
fn die_diagnosed(err: &AnalysisError) -> ! {
    eprintln!("mashup: static analysis refused the input");
    eprintln!("{}", render_pretty(&err.diagnostics));
    std::process::exit(1)
}

struct Args {
    workflow: String,
    nodes: usize,
    objective: Objective,
    strategy: String,
    format: String,
    out: Option<String>,
    verbose: bool,
    check: bool,
    probe_sharing: bool,
}

fn parse_args(mut rest: std::env::Args) -> Args {
    let workflow = rest
        .next()
        .unwrap_or_else(|| die("missing workflow argument"));
    let mut args = Args {
        workflow,
        nodes: 8,
        objective: Objective::ExecutionTime,
        strategy: "mashup".into(),
        format: "jsonl".into(),
        out: None,
        verbose: false,
        check: false,
        probe_sharing: false,
    };
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--nodes" => {
                args.nodes = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--nodes needs a positive integer"));
            }
            "--objective" => {
                args.objective = match rest.next().as_deref() {
                    Some("time") => Objective::ExecutionTime,
                    Some("expense") => Objective::Expense,
                    Some("both") => Objective::Both,
                    other => die(&format!("unknown objective {other:?}")),
                };
            }
            "--strategy" => {
                args.strategy = rest
                    .next()
                    .unwrap_or_else(|| die("--strategy needs a value"));
            }
            "--format" => {
                args.format = match rest.next().as_deref() {
                    Some("jsonl") => "jsonl".into(),
                    Some("chrome") => "chrome".into(),
                    other => die(&format!("unknown trace format {other:?}")),
                };
            }
            "--out" => {
                args.out = Some(rest.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--verbose" => args.verbose = true,
            "--check" => args.check = true,
            "--probe-sharing" => args.probe_sharing = true,
            other => die(&format!("unknown flag '{other}'")),
        }
    }
    args
}

fn print_report(label: &str, r: &WorkflowReport) {
    println!(
        "{:<12} {:>10.1}s   ${:<8.4} (vm ${:.4} + faas ${:.4} + storage ${:.4})",
        label,
        r.makespan_secs,
        r.expense.total(),
        r.expense.vm_dollars,
        r.expense.faas_dollars,
        r.expense.storage_dollars
    );
}

fn main() {
    let mut argv = std::env::args();
    let _bin = argv.next();
    let Some(cmd) = argv.next() else {
        die("usage: mashup <validate|analyze|dot|plan|run|compare|trace> <workflow> [flags]")
    };
    match cmd.as_str() {
        "validate" => {
            let spec = argv.next().unwrap_or_else(|| die("missing workflow"));
            let w = load_workflow(&spec);
            println!(
                "'{}' is valid: {} tasks, {} components, {} phases, peak width {}",
                w.name,
                w.task_count(),
                w.component_count(),
                w.phases.len(),
                w.max_width()
            );
        }
        "dot" => {
            let spec = argv.next().unwrap_or_else(|| die("missing workflow"));
            let w = load_workflow(&spec);
            print!("{}", mashup::dag::to_dot(&w));
        }
        "analyze" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            match mashup::engine::preflight(&cfg, &w, None) {
                Ok(warnings) => {
                    print!("{}", render_pretty(&warnings));
                }
                Err(e) => die_diagnosed(&e),
            }
        }
        "plan" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            // --probe-sharing collapses serverless probes across tasks of
            // the same code family — one probe per family instead of one
            // per task, the cheap mode for very wide workflows.
            let pdc = Pdc::new(cfg)
                .with_objective(args.objective)
                .with_probe_sharing(args.probe_sharing)
                .try_decide(&w)
                .unwrap_or_else(|e| die_diagnosed(&e));
            println!(
                "plan for '{}' on {} nodes ({} sub-clusters):",
                w.name, args.nodes, pdc.subclusters
            );
            for d in &pdc.decisions {
                let reason = d
                    .forced_vm_reason
                    .as_deref()
                    .map(|r| format!("  [{r}]"))
                    .unwrap_or_default();
                println!(
                    "  {:<20} C={:<5} T_vm={:>9.1}s  T_sl≈{:>9.1}s  -> {}{}",
                    d.name, d.components, d.t_vm_secs, d.t_serverless_est_secs, d.platform, reason
                );
            }
            println!(
                "profiling cost: ${:.4} (amortized over production runs)",
                pdc.profiling_expense.total()
            );
        }
        "run" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            let report = match args.strategy.as_str() {
                "mashup" => {
                    Mashup::new(cfg)
                        .try_run(&w)
                        .unwrap_or_else(|e| die_diagnosed(&e))
                        .report
                }
                "wo-pdc" => Mashup::new(cfg)
                    .try_run_without_pdc(&w)
                    .unwrap_or_else(|e| die_diagnosed(&e)),
                "traditional" => run_traditional_tuned(&cfg, &w),
                "serverless" => run_serverless_only(&cfg, &w),
                "pegasus" => run_pegasus(&cfg, &w),
                "kepler" => run_kepler(&cfg, &w),
                other => die(&format!("unknown strategy '{other}'")),
            };
            print_report(&args.strategy, &report);
            for t in &report.tasks {
                println!(
                    "  {:<20} {:<10} {:>8.1}s  (cold {:>5.1}s, io {:>7.1}s, {} ckpts)",
                    t.name,
                    t.platform.to_string(),
                    t.makespan_secs(),
                    t.cold_start_secs,
                    t.io_secs,
                    t.checkpoints
                );
            }
            println!("\n{}", report.render_gantt(60));
        }
        "trace" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            let tracer = if args.verbose {
                Tracer::verbose()
            } else {
                Tracer::new()
            };
            let report = match args.strategy.as_str() {
                "mashup" => {
                    Mashup::new(cfg.clone())
                        .with_tracer(tracer.clone())
                        .try_run(&w)
                        .unwrap_or_else(|e| die_diagnosed(&e))
                        .report
                }
                "wo-pdc" => Mashup::new(cfg.clone())
                    .with_tracer(tracer.clone())
                    .try_run_without_pdc(&w)
                    .unwrap_or_else(|e| die_diagnosed(&e)),
                "traditional" => run_traditional_tuned_traced(&cfg, &w, &tracer),
                "serverless" => run_serverless_only_traced(&cfg, &w, &tracer),
                "pegasus" => run_pegasus_traced(&cfg, &w, &tracer),
                "kepler" => run_kepler_traced(&cfg, &w, &tracer),
                other => die(&format!("unknown strategy '{other}'")),
            };
            let records = tracer.take();
            let body = match args.format.as_str() {
                "chrome" => mashup::sim::trace::to_chrome_trace(&records),
                _ => mashup::sim::trace::to_jsonl(&records),
            };
            match &args.out {
                Some(path) => {
                    std::fs::write(path, &body)
                        .unwrap_or_else(|e| die(&format!("cannot write '{path}': {e}")));
                    eprintln!(
                        "wrote {} records ({} format) to {path}",
                        records.len(),
                        args.format
                    );
                }
                None => print!("{body}"),
            }
            if args.check {
                let violations = mashup::engine::trace::check(&cfg, &w, &report, &records);
                if violations.is_empty() {
                    eprintln!("trace check: all invariants hold");
                } else {
                    for v in &violations {
                        eprintln!("trace check: {v}");
                    }
                    std::process::exit(1);
                }
            }
        }
        "compare" => {
            let args = parse_args(argv);
            let w = load_workflow(&args.workflow);
            let cfg = MashupConfig::aws(args.nodes);
            println!("'{}' on {} nodes:", w.name, args.nodes);
            let traditional = run_traditional_tuned(&cfg, &w);
            print_report("traditional", &traditional);
            print_report("serverless", &run_serverless_only(&cfg, &w));
            print_report("pegasus", &run_pegasus(&cfg, &w));
            print_report("kepler", &run_kepler(&cfg, &w));
            let mashup = Mashup::new(cfg).run(&w).report;
            print_report("mashup", &mashup);
            println!(
                "\nmashup vs traditional: {:.1}% time, {:.1}% expense",
                improvement_pct(mashup.makespan_secs, traditional.makespan_secs),
                improvement_pct(mashup.expense.total(), traditional.expense.total())
            );
        }
        other => die(&format!("unknown command '{other}'")),
    }
}
