//! # mashup
//!
//! Facade crate for the Mashup reproduction — *"Mashup: Making Serverless
//! Computing Useful for HPC Workflows via Hybrid Execution"* (PPoPP '22).
//!
//! Re-exports the public API of every workspace crate under one roof:
//!
//! * [`dag`] — workflow DAG model (components, tasks, phases, patterns);
//! * [`workflows`] — the paper's 1000Genome, SRAsearch, and Epigenomics;
//! * [`cloud`] — simulated VM cluster, FaaS platform, and object store;
//! * [`analyze`] — static workflow/plan/config diagnostics (M-codes);
//! * [`engine`] — the Mashup engine: PDC + hybrid executor;
//! * [`baselines`] — traditional cluster, serverless-only, Pegasus-like,
//!   Kepler-like;
//! * [`local`] — the real thread-based execution backend;
//! * [`serve`] — the multi-tenant planning service, shared worker pool,
//!   and closed-loop load-test harness;
//! * [`sim`] — the discrete-event substrate.
//!
//! ```
//! use mashup::prelude::*;
//!
//! let workflow = mashup::workflows::srasearch::workflow();
//! let outcome = Mashup::new(MashupConfig::aws(4)).run(&workflow);
//! let baseline = run_traditional(&MashupConfig::aws(4), &workflow);
//! assert!(outcome.report.makespan_secs < baseline.makespan_secs);
//! ```

#![warn(missing_docs)]

pub use mashup_analyze as analyze;
pub use mashup_baselines as baselines;
pub use mashup_cloud as cloud;
pub use mashup_core as engine;
pub use mashup_dag as dag;
pub use mashup_local as local;
pub use mashup_serve as serve;
pub use mashup_sim as sim;
pub use mashup_workflows as workflows;

/// The most commonly used items in one import.
pub mod prelude {
    pub use mashup_analyze::{render_pretty, AnalysisError, Diagnostic};
    pub use mashup_baselines::{
        run_kepler, run_kepler_traced, run_pegasus, run_pegasus_traced, run_serverless_only,
        run_serverless_only_traced, run_traditional, run_traditional_traced, run_traditional_tuned,
        run_traditional_tuned_traced,
    };
    pub use mashup_cloud::{Fault, FaultPlan, FaultProfile};
    pub use mashup_core::{
        improvement_pct, ChaosSpec, Mashup, MashupConfig, MashupOutcome, Objective, Pdc,
        PlacementPlan, Platform, TraceEvent, TraceRecord, Tracer, WorkflowReport,
    };
    pub use mashup_dag::{
        DependencyPattern, Task, TaskProfile, TaskRef, Workflow, WorkflowBuilder,
    };
    pub use mashup_workflows::{epigenomics, genome1000, srasearch};
}
