//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote`) targeting the value-tree
//! `Serialize`/`Deserialize` traits of the vendored `serde`. Supported input
//! shapes — exactly what this workspace contains:
//!
//! - structs with named fields, honoring `#[serde(default)]` per field
//! - tuple structs (newtypes serialize as their single inner value,
//!   longer tuples as arrays)
//! - enums with unit variants only (serialized as the variant name string)
//! - container attribute `#[serde(from = "Type", into = "Type")]`
//!
//! Anything else (generics, tagged enums, renames, ...) panics at macro
//! expansion time with a clear message rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct: (field name, has `#[serde(default)]`).
    Struct(Vec<(String, bool)>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Enum of unit variants.
    Enum(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = if let Some(into_ty) = &input.into_ty {
        format!(
            "let __converted: {into_ty} = \
             <Self as ::core::clone::Clone>::clone(self).into();\n\
             ::serde::Serialize::to_value(&__converted)"
        )
    } else {
        match &input.shape {
            Shape::Struct(fields) => {
                let mut s = String::from("let mut __obj = ::std::vec::Vec::new();\n");
                for (f, _) in fields {
                    s.push_str(&format!(
                        "__obj.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(__obj)");
                s
            }
            Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
            Shape::Enum(variants) => {
                let mut s = String::from("match self {\n");
                for v in variants {
                    s.push_str(&format!(
                        "Self::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),\n"
                    ));
                }
                s.push('}');
                s
            }
        }
    };
    let name = &input.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = if let Some(from_ty) = &input.from_ty {
        format!(
            "let __converted: {from_ty} = ::serde::Deserialize::from_value(__v)?;\n\
             ::core::result::Result::Ok(\
             <Self as ::core::convert::From<{from_ty}>>::from(__converted))"
        )
    } else {
        match &input.shape {
            Shape::Struct(fields) => {
                let mut s = String::from(
                    "let __obj = __v.as_object()\
                     .ok_or_else(|| ::serde::Error::expected(\"object\", __v))?;\n",
                );
                s.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
                for (f, has_default) in fields {
                    if *has_default {
                        s.push_str(&format!(
                            "{f}: match ::serde::__get(__obj, \"{f}\") {{\n\
                             ::core::option::Option::Some(__x) => \
                             ::serde::Deserialize::from_value(__x)?,\n\
                             ::core::option::Option::None => \
                             ::core::default::Default::default(),\n}},\n"
                        ));
                    } else {
                        s.push_str(&format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::__get(__obj, \"{f}\")\
                             .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                        ));
                    }
                }
                s.push_str("})");
                s
            }
            Shape::Tuple(1) => {
                format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__v)?))"
                )
            }
            Shape::Tuple(n) => {
                let mut s = format!(
                    "let __arr = __v.as_array()\
                     .ok_or_else(|| ::serde::Error::expected(\"array\", __v))?;\n\
                     if __arr.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::Error::custom(\
                     \"wrong tuple length\"));\n}}\n"
                );
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                s.push_str(&format!(
                    "::core::result::Result::Ok({name}({}))",
                    items.join(", ")
                ));
                s
            }
            Shape::Enum(variants) => {
                let mut s = String::from(
                    "let __s = __v.as_str()\
                     .ok_or_else(|| ::serde::Error::expected(\"string\", __v))?;\n\
                     match __s {\n",
                );
                for v in variants {
                    s.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok(Self::{v}),\n"
                    ));
                }
                s.push_str(&format!(
                    "__other => ::core::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
                ));
                s
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

// --------------------------------------------------------------------------
// Input parsing
// --------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut from_ty = None;
    let mut into_ty = None;

    // Container attributes and visibility come before `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_container_attr(g.stream(), &mut from_ty, &mut into_ty);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the offline stub ({name})");
        }
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::Struct(parse_named_fields(g.stream()))
            } else {
                Shape::Enum(parse_unit_variants(g.stream(), &name))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                panic!("serde_derive: unexpected parenthesized body on enum {name}");
            }
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        other => panic!("serde_derive: unsupported body for {name}: {other:?}"),
    };

    Input {
        name,
        shape,
        from_ty,
        into_ty,
    }
}

/// Extracts `from`/`into` types out of one `#[serde(...)]` attribute group.
/// The group stream looks like `serde (from = "...", into = "...")` for the
/// outer `#[...]` brackets.
fn parse_container_attr(
    stream: TokenStream,
    from_ty: &mut Option<String>,
    into_ty: &mut Option<String>,
) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < args.len() {
                if let TokenTree::Ident(key) = &args[j] {
                    let key = key.to_string();
                    if matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        let lit = match args.get(j + 2) {
                            Some(TokenTree::Literal(l)) => string_literal_contents(&l.to_string()),
                            other => {
                                panic!("serde_derive: expected string literal, found {other:?}")
                            }
                        };
                        match key.as_str() {
                            "from" => *from_ty = Some(lit),
                            "into" => *into_ty = Some(lit),
                            other => panic!(
                                "serde_derive: unsupported container attribute `{other}` \
                                 (offline stub supports from/into/default only)"
                            ),
                        }
                        j += 3;
                        continue;
                    }
                }
                j += 1;
            }
        }
        _ => {} // Not a #[serde(...)] attribute (doc comment etc.) — ignore.
    }
}

fn string_literal_contents(lit: &str) -> String {
    let stripped = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive: expected plain string literal, got {lit}"));
    stripped.to_string()
}

/// Does this attribute group (contents of the outer `#[...]`) say
/// `serde(default)`?
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(inner.first(),
                     Some(TokenTree::Ident(i)) if i.to_string() == "default" && inner.len() == 1)
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut pending_default = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    if attr_is_serde_default(g.stream()) {
                        pending_default = true;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Skip a `(crate)`-style visibility restriction.
                if matches!(toks.get(i), Some(TokenTree::Group(g))
                            if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                fields.push((id.to_string(), pending_default));
                pending_default = false;
                // Skip past the `: Type` up to the next top-level comma.
                i += 1;
                let mut depth = 0i32;
                while i < toks.len() {
                    match &toks[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // Attribute: `#` plus its bracket group.
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match toks.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => panic!(
                        "serde_derive: enum {enum_name} has a non-unit variant near {other:?}; \
                         the offline stub supports unit variants only"
                    ),
                }
            }
            other => panic!("serde_derive: unexpected token in enum {enum_name}: {other:?}"),
        }
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in &toks {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}
