//! Offline stand-in for `rand` 0.8.
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 (the
//! reference seeding procedure). The statistical quality is more than
//! adequate for simulation jitter and property-test case generation; the
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine because upstream makes no cross-version stream guarantee either —
//! all determinism in this workspace is relative to this implementation.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, the workspace's standard RNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from the generator's native output
/// (the `Standard` distribution in upstream rand).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

signed_range_impls!(i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = <$t as StandardSample>::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let f = <$t as StandardSample>::sample(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(2.5f64..=3.5);
            assert!((2.5..=3.5).contains(&w));
        }
    }
}
