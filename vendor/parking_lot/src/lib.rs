//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: `Mutex` and `RwLock`
//! with panic-free (non-poisoning) lock acquisition, matching parking_lot's
//! semantics of ignoring poison.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition never returns a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}
