//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range and `any::<T>()`
//! strategies, strategy tuples, `prop_map`, `collection::vec`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed (hash of the test path and case index), so failures are
//! reproducible run-to-run. No shrinking: a failing case panics with the
//! case number so it can be replayed under a debugger.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    /// Types with a default "anything" strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u64>() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A:0)
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
        (A:0, B:1, C:2, D:3, E:4, F:5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A range of collection sizes; build one from `usize` or `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with a random length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps full-workspace test time
            // reasonable while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub fn __case_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index, so every
    // (test, case) pair sees an independent deterministic stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Defines property tests. See the crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::__case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let _ = __case; // Reported by panic location; keeps lints quiet.
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}
