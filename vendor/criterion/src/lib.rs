//! Offline stand-in for `criterion`.
//!
//! Measures mean wall-clock time per iteration with an adaptive batch loop
//! (keep doubling the batch until it runs long enough to trust the clock).
//! Statistical machinery (outlier analysis, HTML reports) is omitted.
//!
//! Extra feature used by this workspace's tooling: when the `BENCH_JSON`
//! environment variable names a file, every measured benchmark is appended
//! to it as a JSON array of `{name, mean_ns, iters}` records when the
//! harness exits (see `BENCH_sim.json` in the repo docs).

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The stub measures per-iteration regardless, so the variants only exist
/// for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: thousands per batch upstream.
    SmallInput,
    /// Large inputs: one batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

#[derive(Debug, Clone)]
struct Record {
    name: String,
    mean_ns: f64,
    iters: u64,
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--test` is what `cargo test` / criterion's own test mode pass to
        // harness=false bench binaries: run everything once, measure nothing.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            quick,
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (scales measuring time).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Upstream-compatible no-op: measurement time is adaptive here.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            quick: self.quick,
            // Aim for ~2ms of measured work per nominal sample; enough for a
            // stable mean on both micro and multi-second benchmarks.
            target: Duration::from_millis((2 * self.sample_size as u64).max(50)),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let iters = bencher.iters.max(1);
        let mean_ns = bencher.total.as_nanos() as f64 / iters as f64;
        if self.quick {
            println!("{name}: ok (test mode)");
        } else {
            println!("{name}  time: [{}]", format_ns(mean_ns));
        }
        RESULTS.lock().unwrap().push(Record {
            name: name.to_string(),
            mean_ns,
            iters,
        });
        self
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    quick: bool,
    target: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` by running it in adaptively sized batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            black_box(routine());
            self.iters = 1;
            return;
        }
        black_box(routine()); // Warm-up, untimed.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += batch;
            if self.total >= self.target {
                return;
            }
            if elapsed < self.target / 8 {
                batch = batch.saturating_mul(2);
            }
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.quick {
            black_box(routine(setup()));
            self.iters = 1;
            return;
        }
        black_box(routine(setup())); // Warm-up, untimed.
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= self.target || self.iters >= 10_000 {
                return;
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Called by `criterion_main!` after all groups ran: emits the JSON record
/// file when `BENCH_JSON` is set.
#[doc(hidden)]
pub fn __finish() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"mean_ns\": {}, \"iters\": {}}}",
            r.name.replace('"', "\\\""),
            r.mean_ns,
            r.iters
        ));
    }
    out.push_str("\n]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: failed to write {path}: {e}");
    }
}

/// Declares a benchmark group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!{
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
            $crate::__finish();
        }
    };
}
