//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this implementation serializes
//! through an owned JSON-like [`Value`] tree: `Serialize` renders a value
//! into a tree and `Deserialize` reconstructs one from it. `serde_json`
//! (also vendored) prints and parses that tree. The `#[derive(Serialize,
//! Deserialize)]` macros come from the in-tree `serde_derive` and support
//! the attribute subset this workspace uses: `#[serde(default)]` on fields
//! and `#[serde(from = "...", into = "...")]` on containers.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like tree of owned data.
///
/// Objects preserve insertion order (field declaration order for derived
/// impls) so that printed output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(n) => n,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::I(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::I(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries of the object, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

/// Error produced when reconstructing a typed value from a [`Value`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Type mismatch: wanted one shape, got another.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("expected {what}, found {kind}"))
    }

    /// A required object member was absent.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, validating the tree's shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("boolean", v))
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U(n as u64))
                } else {
                    Value::Number(Number::I(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::expected("number", v))?;
                Ok(n as $t)
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash order.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expect = [$($idx),+].len();
                if arr.len() != expect {
                    return Err(Error::custom(format!(
                        "expected array of length {expect}, found {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

#[doc(hidden)]
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
