//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer backed by an
//! `Arc<[u8]>`. Slicing views are not needed by this workspace and are not
//! provided.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Creates a buffer by copying a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}
