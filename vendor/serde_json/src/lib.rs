//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the vendored `serde` [`Value`] tree. Printing is
//! deterministic: objects keep insertion order (derived impls insert in
//! field declaration order) and floats use Rust's shortest round-trip
//! formatting, so parse(print(v)) reproduces every number bit-for-bit.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

fn err(msg: impl fmt::Display) -> Error {
    Error {
        msg: msg.to_string(),
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::from)
}

// --------------------------------------------------------------------------
// Printing
// --------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) if v.is_finite() => out.push_str(&v.to_string()),
        // serde_json renders non-finite floats as null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

// --------------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(err(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(err(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(err(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(combined).ok_or_else(|| err("invalid surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(err(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => return Err(err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(err(format!("invalid number at offset {start}")));
        }
        let number = if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                match rest.parse::<i64>() {
                    // `-0` must stay a float so the sign bit survives the
                    // round trip (Rust prints -0.0 as "-0").
                    Ok(0) => Number::F(-0.0),
                    Ok(n) => Number::I(-n),
                    Err(_) => Number::F(text.parse::<f64>().map_err(err)?),
                }
            } else {
                match text.parse::<u64>() {
                    Ok(n) => Number::U(n),
                    Err(_) => Number::F(text.parse::<f64>().map_err(err)?),
                }
            }
        } else {
            Number::F(text.parse::<f64>().map_err(err)?)
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_exactly() {
        for v in [0.1f64, 1.0 / 3.0, 123456789.125, -0.0, 1e-12, 2.5e12] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{json}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5], "b": {"c": "x\ny"}, "d": null}"#).unwrap();
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert!(v["d"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_output_shape() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nope").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
