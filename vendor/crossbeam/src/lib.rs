//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}`: a
//! multi-producer multi-consumer FIFO channel built on a mutex + condvar.
//! Semantics match crossbeam's unbounded channel for the operations used
//! here: `send`, blocking `recv`, `try_recv`, cloneable endpoints, and
//! disconnection when all endpoints of the other side are dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel; cloneable for MPMC use.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                Ok(v)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake all blocked receivers so they observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.inner.lock().unwrap().receivers -= 1;
        }
    }
}
