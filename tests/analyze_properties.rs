//! Property: a workflow the analyzer passes with zero errors executes
//! end-to-end without panicking — on the full Mashup engine, a uniform
//! serverless plan, and a uniform VM-cluster (traditional) plan. The
//! analyzer's whole contract is that its gate is at least as strong as
//! every runtime assertion behind it.

use mashup::analyze::has_errors;
use mashup::engine::{preflight, try_execute};
use mashup::prelude::*;
use mashup_workflows::{generate, SyntheticConfig};
use proptest::prelude::*;

fn small_synthetic(seed: u64) -> Workflow {
    generate(
        &SyntheticConfig {
            phases: 3,
            tasks_per_phase: (1, 2),
            component_choices: vec![1, 4, 16, 48],
            compute_secs: (1.0, 60.0),
            io_bytes: (1.0e5, 5.0e7),
            slowdown: (0.8, 1.8),
            recurring_prob: 0.2,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Analyzer-clean workflows execute under every strategy. The typed
    /// `try_*` APIs may refuse (that is their job) but must never panic,
    /// and an accepted run must produce a positive makespan.
    #[test]
    fn clean_workflows_execute_without_panicking(seed in 0u64..1000) {
        let w = small_synthetic(seed);
        let cfg = MashupConfig::aws(4);
        let warnings = preflight(&cfg, &w, None).expect("synthetic workflows analyze clean");
        prop_assert!(!has_errors(&warnings));

        // Traditional: uniform VM plan must both pass the gate and run.
        let vm_plan = PlacementPlan::uniform(&w, Platform::VmCluster);
        let report = try_execute(&cfg, &w, &vm_plan, "traditional")
            .expect("uniform VM plan is always executable");
        prop_assert!(report.makespan_secs > 0.0);

        // Serverless-only: the gate may refuse the plan (typed error), but
        // an accepted plan must run to completion.
        let sl_plan = PlacementPlan::uniform(&w, Platform::Serverless);
        match try_execute(&cfg, &w, &sl_plan, "serverless-only") {
            Ok(report) => prop_assert!(report.makespan_secs > 0.0),
            Err(e) => prop_assert!(e.errors().count() > 0),
        }

        // Full Mashup: PDC decisions over a clean workflow must yield an
        // executable plan.
        let outcome = Mashup::new(cfg).try_run(&w).expect("PDC plan executes");
        prop_assert!(outcome.report.makespan_secs > 0.0);
    }
}
