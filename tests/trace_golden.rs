//! Golden flight-recorder traces for the paper workflows.
//!
//! Each fixture under `tests/trace_fixtures/golden/` is the full flow-level
//! JSONL trace of a Mashup run on the 4-node AWS-like configuration —
//! every task dispatch, function invocation, checkpoint, storage transfer,
//! and billing event, with the PDC's decision provenance. The comparison
//! is byte-for-byte: any drift in scheduling order, billing math, or the
//! serialization format shows up as a diff here before it can silently
//! change figures.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! MASHUP_BLESS_TRACES=1 cargo test --test trace_golden
//! ```
//!
//! then review the fixture diff like any other code change.

use mashup_cloud::{Fault, FaultPlan};
use mashup_core::{ChaosSpec, Mashup, MashupConfig, Tracer};
use mashup_sim::trace::{from_jsonl, to_jsonl};
use mashup_workflows::{epigenomics, genome1000, srasearch};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/trace_fixtures/golden")
        .join(format!("{name}.jsonl"))
}

fn record(workflow: &mashup_dag::Workflow) -> String {
    let tracer = Tracer::new();
    Mashup::new(MashupConfig::aws(4))
        .with_tracer(tracer.clone())
        .run(workflow);
    to_jsonl(&tracer.take())
}

fn record_chaos(workflow: &mashup_dag::Workflow, chaos: ChaosSpec) -> String {
    let tracer = Tracer::new();
    Mashup::new(MashupConfig::aws(4).with_chaos(chaos))
        .with_tracer(tracer.clone())
        .run(workflow);
    to_jsonl(&tracer.take())
}

/// Two spot nodes reclaimed mid-run with the replanning controller on, so
/// the golden pins preemption, retry, replanning, and spot-billing bytes.
fn preempt_chaos(at_secs: f64) -> ChaosSpec {
    let mut plan = FaultPlan::empty(29);
    plan.faults.push(Fault::Preempt { at_secs, node: 1 });
    plan.faults.push(Fault::Preempt { at_secs, node: 2 });
    ChaosSpec::new(plan).with_adaptive(true)
}

/// A transient GET-error window plus a latency spike over the early run,
/// so the golden pins fault injection and per-operation retry bytes.
fn storage_chaos(until_secs: f64) -> ChaosSpec {
    let mut plan = FaultPlan::empty(31);
    plan.faults.push(Fault::StorageError {
        from_secs: 0.0,
        until_secs,
        prob: 0.3,
    });
    plan.faults.push(Fault::StorageLatency {
        from_secs: 0.0,
        until_secs,
        extra_secs: 0.2,
    });
    ChaosSpec::new(plan)
}

fn check_golden(name: &str, workflow: &mashup_dag::Workflow) {
    check_golden_bytes(name, record(workflow));
}

fn check_golden_bytes(name: &str, actual: String) {
    let path = golden_path(name);
    if std::env::var_os("MASHUP_BLESS_TRACES").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        std::fs::write(&path, &actual).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `MASHUP_BLESS_TRACES=1 cargo test --test trace_golden` \
             to record fixtures)",
            path.display()
        )
    });
    // The serialized form must round-trip through the parser losslessly.
    let parsed = from_jsonl(&actual).expect("trace parses");
    assert_eq!(
        to_jsonl(&parsed),
        actual,
        "{name}: JSONL round-trip lost information"
    );
    assert_eq!(
        golden, actual,
        "{name}: trace drifted from the golden fixture (bless with MASHUP_BLESS_TRACES=1 \
         if the change is intentional)"
    );
}

#[test]
fn genome1000_trace_matches_golden() {
    check_golden("genome1000", &genome1000::workflow());
}

#[test]
fn srasearch_trace_matches_golden() {
    check_golden("srasearch", &srasearch::workflow());
}

#[test]
fn epigenomics_trace_matches_golden() {
    check_golden("epigenomics", &epigenomics::workflow());
}

// --- chaos goldens: seeded fault schedules replay byte-for-byte ---------
//
// Reclaim instants / fault windows sit in each workflow's first quarter
// (makespans at 4 nodes: ~923s, ~418s, ~5083s), so plenty of the run
// remains for retries and replanning to land in the trace.

#[test]
fn genome1000_preemption_trace_matches_golden() {
    let t = record_chaos(&genome1000::workflow(), preempt_chaos(200.0));
    check_golden_bytes("genome1000_preempt", t);
}

#[test]
fn srasearch_preemption_trace_matches_golden() {
    let t = record_chaos(&srasearch::workflow(), preempt_chaos(100.0));
    check_golden_bytes("srasearch_preempt", t);
}

#[test]
fn epigenomics_preemption_trace_matches_golden() {
    let t = record_chaos(&epigenomics::workflow(), preempt_chaos(1200.0));
    check_golden_bytes("epigenomics_preempt", t);
}

#[test]
fn genome1000_storage_fault_trace_matches_golden() {
    let t = record_chaos(&genome1000::workflow(), storage_chaos(230.0));
    check_golden_bytes("genome1000_storage", t);
}

#[test]
fn srasearch_storage_fault_trace_matches_golden() {
    let t = record_chaos(&srasearch::workflow(), storage_chaos(100.0));
    check_golden_bytes("srasearch_storage", t);
}

#[test]
fn epigenomics_storage_fault_trace_matches_golden() {
    let t = record_chaos(&epigenomics::workflow(), storage_chaos(1200.0));
    check_golden_bytes("epigenomics_storage", t);
}

/// The chaos layer is strictly opt-in: a config carrying an *inert* spec
/// (controller off, zero faults) must replay the fault-free golden
/// byte-for-byte — same events, same seq numbers, same serialization.
#[test]
fn inert_chaos_matches_the_fault_free_golden() {
    for (name, w) in [
        ("genome1000", genome1000::workflow()),
        ("srasearch", srasearch::workflow()),
        ("epigenomics", epigenomics::workflow()),
    ] {
        let golden = std::fs::read_to_string(golden_path(name)).expect("fault-free golden");
        let inert = record_chaos(&w, ChaosSpec::new(FaultPlan::empty(97)));
        assert_eq!(
            golden, inert,
            "{name}: an inert ChaosSpec perturbed the fault-free trace"
        );
    }
}
