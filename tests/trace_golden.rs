//! Golden flight-recorder traces for the paper workflows.
//!
//! Each fixture under `tests/trace_fixtures/golden/` is the full flow-level
//! JSONL trace of a Mashup run on the 4-node AWS-like configuration —
//! every task dispatch, function invocation, checkpoint, storage transfer,
//! and billing event, with the PDC's decision provenance. The comparison
//! is byte-for-byte: any drift in scheduling order, billing math, or the
//! serialization format shows up as a diff here before it can silently
//! change figures.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! MASHUP_BLESS_TRACES=1 cargo test --test trace_golden
//! ```
//!
//! then review the fixture diff like any other code change.

use mashup_core::{Mashup, MashupConfig, Tracer};
use mashup_sim::trace::{from_jsonl, to_jsonl};
use mashup_workflows::{epigenomics, genome1000, srasearch};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/trace_fixtures/golden")
        .join(format!("{name}.jsonl"))
}

fn record(workflow: &mashup_dag::Workflow) -> String {
    let tracer = Tracer::new();
    Mashup::new(MashupConfig::aws(4))
        .with_tracer(tracer.clone())
        .run(workflow);
    to_jsonl(&tracer.take())
}

fn check_golden(name: &str, workflow: &mashup_dag::Workflow) {
    let path = golden_path(name);
    let actual = record(workflow);
    if std::env::var_os("MASHUP_BLESS_TRACES").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        std::fs::write(&path, &actual).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `MASHUP_BLESS_TRACES=1 cargo test --test trace_golden` \
             to record fixtures)",
            path.display()
        )
    });
    // The serialized form must round-trip through the parser losslessly.
    let parsed = from_jsonl(&actual).expect("trace parses");
    assert_eq!(
        to_jsonl(&parsed),
        actual,
        "{name}: JSONL round-trip lost information"
    );
    assert_eq!(
        golden, actual,
        "{name}: trace drifted from the golden fixture (bless with MASHUP_BLESS_TRACES=1 \
         if the change is intentional)"
    );
}

#[test]
fn genome1000_trace_matches_golden() {
    check_golden("genome1000", &genome1000::workflow());
}

#[test]
fn srasearch_trace_matches_golden() {
    check_golden("srasearch", &srasearch::workflow());
}

#[test]
fn epigenomics_trace_matches_golden() {
    check_golden("epigenomics", &epigenomics::workflow());
}
