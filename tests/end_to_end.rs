//! End-to-end integration: the full engine against every baseline on the
//! paper's workflows (small cluster sizes keep debug-mode runtimes low).

use mashup::prelude::*;

fn small_cfg() -> MashupConfig {
    MashupConfig::aws(8)
}

#[test]
fn mashup_beats_traditional_on_every_paper_workflow() {
    for w in [
        genome1000::workflow(),
        srasearch::workflow(),
        epigenomics::workflow(),
    ] {
        let cfg = small_cfg();
        let traditional = run_traditional_tuned(&cfg, &w);
        let outcome = Mashup::new(cfg).run(&w);
        assert!(
            outcome.report.makespan_secs < traditional.makespan_secs,
            "{}: mashup {:.0}s vs traditional {:.0}s",
            w.name,
            outcome.report.makespan_secs,
            traditional.makespan_secs
        );
        // On small clusters the expense should improve too (Fig. 7 region).
        assert!(
            outcome.report.expense.total() < traditional.expense.total(),
            "{}: mashup ${:.3} vs traditional ${:.3}",
            w.name,
            outcome.report.expense.total(),
            traditional.expense.total()
        );
    }
}

#[test]
fn hybrid_beats_both_pure_strategies_on_1000genome() {
    // The Fig. 11 "best of both worlds" claim at a small cluster size.
    let cfg = small_cfg();
    let w = genome1000::workflow();
    let mashup = Mashup::new(cfg.clone()).run(&w).report;
    let vm = run_traditional_tuned(&cfg, &w);
    let sl = run_serverless_only(&cfg, &w);
    assert!(mashup.makespan_secs <= vm.makespan_secs);
    assert!(mashup.makespan_secs <= sl.makespan_secs * 1.05);
}

#[test]
fn pdc_beats_or_matches_the_naive_threshold_plan() {
    for w in [genome1000::workflow(), srasearch::workflow()] {
        let cfg = small_cfg();
        let engine = Mashup::new(cfg);
        let with_pdc = engine.run(&w).report;
        let without = engine.run_without_pdc(&w);
        assert!(
            with_pdc.makespan_secs <= without.makespan_secs * 1.02,
            "{}: PDC {:.0}s vs naive {:.0}s",
            w.name,
            with_pdc.makespan_secs,
            without.makespan_secs
        );
    }
}

#[test]
fn reports_are_internally_consistent() {
    let cfg = small_cfg();
    let w = srasearch::workflow();
    let outcome = Mashup::new(cfg).run(&w);
    let r = &outcome.report;
    assert_eq!(r.tasks.len(), w.task_count());
    // The makespan is the completion of the last task.
    let last_end = r.tasks.iter().map(|t| t.end_secs).fold(0.0f64, f64::max);
    assert!((r.makespan_secs - last_end).abs() < 1e-6);
    // Phase precedence: every task starts at or after all earlier-phase
    // tasks of its workflow finished.
    for t in &r.tasks {
        for earlier in r.tasks.iter().filter(|e| e.phase < t.phase) {
            assert!(
                t.start_secs >= earlier.end_secs - 1e-6,
                "{} (phase {}) started before {} (phase {}) ended",
                t.name,
                t.phase,
                earlier.name,
                earlier.phase
            );
        }
    }
    // Placement plan matches per-task records.
    for t in &r.tasks {
        let (tref, _) = w.task_by_name(&t.name).expect("task exists");
        assert_eq!(r.plan.platform(tref), Ok(t.platform));
    }
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let w = epigenomics::workflow();
    let a = Mashup::new(small_cfg()).run(&w);
    let b = Mashup::new(small_cfg()).run(&w);
    assert_eq!(a.report.makespan_secs, b.report.makespan_secs);
    assert_eq!(a.report.expense, b.report.expense);
    assert_eq!(a.pdc.plan, b.pdc.plan);
}

#[test]
fn all_baselines_complete_on_all_workflows() {
    use mashup::prelude::*;
    for w in [
        genome1000::workflow(),
        srasearch::workflow(),
        epigenomics::workflow(),
    ] {
        let cfg = small_cfg();
        for (label, r) in [
            ("traditional", run_traditional(&cfg, &w)),
            ("tuned", run_traditional_tuned(&cfg, &w)),
            ("serverless", run_serverless_only(&cfg, &w)),
            ("pegasus", run_pegasus(&cfg, &w)),
            ("kepler", run_kepler(&cfg, &w)),
        ] {
            assert!(r.makespan_secs > 0.0, "{label} on {}", w.name);
            assert!(r.expense.total() > 0.0, "{label} on {}", w.name);
        }
    }
}

#[test]
fn serverless_only_checkpoints_over_cap_tasks() {
    // Epigenomics' Chr21 (~42 min serverless) must cross the 15-minute cap.
    let cfg = small_cfg();
    let w = epigenomics::workflow();
    let r = run_serverless_only(&cfg, &w);
    let chr = r.task("Chr21").expect("Chr21 ran");
    assert!(chr.checkpoints >= 2, "checkpoints {}", chr.checkpoints);
    let split = r.task("FastQSplit").expect("FastQSplit ran");
    assert!(split.checkpoints >= 1);
}

#[test]
fn objectives_trade_time_for_expense() {
    let cfg = small_cfg();
    let w = srasearch::workflow();
    let time = Mashup::new(cfg.clone())
        .with_objective(Objective::ExecutionTime)
        .run(&w)
        .report;
    let expense = Mashup::new(cfg)
        .with_objective(Objective::Expense)
        .run(&w)
        .report;
    // The time objective never loses on time; the expense objective never
    // loses on dollars.
    assert!(time.makespan_secs <= expense.makespan_secs * 1.05);
    assert!(expense.expense.total() <= time.expense.total() * 1.05);
}
