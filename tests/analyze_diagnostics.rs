//! Golden tests for the static analyzer over checked-in fixtures.
//!
//! Every diagnostic code must fire on at least one known-bad fixture, and
//! every good fixture must analyze silent. The rendered pretty and JSON
//! reports are compared byte-for-byte against goldens under
//! `tests/analyze_fixtures/golden/`; regenerate them with
//! `UPDATE_GOLDENS=1 cargo test --test analyze_diagnostics`.

use mashup::analyze::{
    analyze_config, analyze_plan, analyze_workflow, render_json, render_pretty, Code, Diagnostic,
    PlanContext,
};
use mashup::engine::{engine_params, MashupConfig};
use mashup::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/analyze_fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// Compares `content` against the golden file, or rewrites the golden when
/// `UPDATE_GOLDENS` is set.
fn assert_golden(name: &str, content: &str) {
    let path = fixture_dir().join("golden").join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, content).expect("write golden");
        return;
    }
    let expected =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"));
    assert_eq!(content, expected, "golden mismatch for {name}");
}

fn check_goldens(stem: &str, diags: &[Diagnostic]) {
    assert_golden(&format!("{stem}.pretty"), &render_pretty(diags));
    assert_golden(&format!("{stem}.json"), &render_json(diags));
}

fn plan_ctx(cfg: &MashupConfig) -> PlanContext<'_> {
    PlanContext {
        faas: &cfg.provider.faas,
        wan_bps: cfg.cluster.instance.wan_bps,
        checkpoint_margin_secs: cfg.checkpoint_margin_secs,
    }
}

fn codes(diags: &[Diagnostic]) -> BTreeSet<Code> {
    diags.iter().map(|d| d.code).collect()
}

/// Every fixture's diagnostics, keyed by the golden stem.
fn all_fixture_diags() -> Vec<(&'static str, Vec<Diagnostic>)> {
    let cfg = MashupConfig::aws(4);
    let bad_workflow: Workflow =
        serde_json::from_str(&fixture("bad_workflow.json")).expect("parse bad_workflow");
    let plan_workflow: Workflow =
        serde_json::from_str(&fixture("plan_workflow.json")).expect("parse plan_workflow");
    let bad_plan: PlacementPlan =
        serde_json::from_str(&fixture("bad_plan.json")).expect("parse bad_plan");
    let partial_plan: PlacementPlan =
        serde_json::from_str(&fixture("partial_plan.json")).expect("parse partial_plan");
    let bad_config: MashupConfig =
        serde_json::from_str(&fixture("bad_config.json")).expect("parse bad_config");
    let scale_workflow: Workflow =
        serde_json::from_str(&fixture("scale_workflow.json")).expect("parse scale_workflow");
    let fusion_chain: Workflow = serde_json::from_str(&fixture("fusion_chain_workflow.json"))
        .expect("parse fusion_chain_workflow");
    vec![
        ("bad_workflow", analyze_workflow(&bad_workflow)),
        ("scale_workflow", analyze_workflow(&scale_workflow)),
        ("fusion_chain_workflow", analyze_workflow(&fusion_chain)),
        (
            "bad_plan",
            analyze_plan(&plan_workflow, &bad_plan, &plan_ctx(&cfg)),
        ),
        (
            "partial_plan",
            analyze_plan(&plan_workflow, &partial_plan, &plan_ctx(&cfg)),
        ),
        (
            "bad_config",
            analyze_config(
                &bad_config.provider,
                &bad_config.cluster,
                &engine_params(&bad_config),
            ),
        ),
    ]
}

#[test]
fn bad_fixtures_match_goldens() {
    for (stem, diags) in all_fixture_diags() {
        assert!(!diags.is_empty(), "{stem} should produce diagnostics");
        check_goldens(stem, &diags);
    }
}

#[test]
fn every_code_fires_in_at_least_one_fixture() {
    let mut fired = BTreeSet::new();
    for (_, diags) in all_fixture_diags() {
        fired.extend(codes(&diags));
    }
    let missing: Vec<Code> = Code::ALL
        .iter()
        .copied()
        .filter(|c| !fired.contains(c))
        .collect();
    assert!(missing.is_empty(), "codes never fired: {missing:?}");
}

#[test]
fn good_fixtures_are_silent() {
    let cfg = MashupConfig::aws(4);
    let good: Workflow =
        serde_json::from_str(&fixture("good_workflow.json")).expect("parse good_workflow");
    assert_eq!(analyze_workflow(&good), Vec::new());

    let plan_workflow: Workflow =
        serde_json::from_str(&fixture("plan_workflow.json")).expect("parse plan_workflow");
    assert_eq!(analyze_workflow(&plan_workflow), Vec::new());
    let good_plan: PlacementPlan =
        serde_json::from_str(&fixture("good_plan.json")).expect("parse good_plan");
    assert_eq!(
        analyze_plan(&plan_workflow, &good_plan, &plan_ctx(&cfg)),
        Vec::new()
    );

    let good_config: MashupConfig =
        serde_json::from_str(&fixture("good_config.json")).expect("parse good_config");
    assert_eq!(
        analyze_config(
            &good_config.provider,
            &good_config.cluster,
            &engine_params(&good_config)
        ),
        Vec::new()
    );
}

#[test]
fn good_fixture_inputs_run_end_to_end() {
    // The good workflow must not just analyze clean — it must execute.
    let cfg = MashupConfig::aws(4);
    let good: Workflow =
        serde_json::from_str(&fixture("good_workflow.json")).expect("parse good_workflow");
    let outcome = Mashup::new(cfg).try_run(&good).expect("clean input runs");
    assert!(outcome.report.makespan_secs > 0.0);
}
