//! Structural tests for the arena/SoA rework.
//!
//! The flat raw-graph path (`from_task_graph`) and the nested builder path
//! are two ways of authoring the same workflow. They must agree exactly —
//! same phases, same dependency lists, and same per-task planning
//! fingerprints (the value the incremental PDC replanner keys its clean
//! check on) — and the raw-graph path must stay O(V + E) at 100k tasks.

use mashup_bench::scale::{self, Shape};
use mashup_core::Fingerprint;
use mashup_dag::{
    from_task_graph, DependencyPattern, RawEdge, Task, TaskProfile, Workflow, WorkflowBuilder,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Strategy: a random layered workflow in which every non-source task
/// depends on a previous-phase task. That pins each task's longest-path
/// level to its phase index, so the builder's explicit phases and
/// `from_task_graph`'s derived levels must coincide exactly. Per-task
/// compute times vary so fingerprints are task-specific, not shape-wide.
fn layered_workflow() -> impl Strategy<Value = Workflow> {
    (
        proptest::collection::vec(proptest::collection::vec(1usize..6, 1..5), 1..6),
        any::<u64>(),
    )
        .prop_map(|(shape, seed)| {
            let mut b = WorkflowBuilder::new("prop-scale");
            let mut prev: Vec<mashup_dag::TaskRef> = Vec::new();
            let mut counter = 0usize;
            for (pi, widths) in shape.iter().enumerate() {
                b.begin_phase();
                let mut current = Vec::new();
                for &comps in widths {
                    let profile = TaskProfile::trivial()
                        .compute(1.0 + counter as f64)
                        .family("prop");
                    let t = b.add_task(Task::new(format!("t{counter}"), comps, profile));
                    counter += 1;
                    if pi > 0 {
                        let pick = (seed as usize + counter) % prev.len();
                        b.depend(t, prev[pick], DependencyPattern::AllToAll);
                    }
                    current.push(t);
                }
                prev = current;
            }
            b.build().expect("layered construction is always valid")
        })
}

/// Flattens a workflow back to (tasks, raw edges) and rebuilds it through
/// `from_task_graph`, the path the scale generators and external graph
/// importers use.
fn rebuild_via_raw_graph(w: &Workflow) -> Workflow {
    let mut tasks = Vec::with_capacity(w.task_count());
    let mut edges = Vec::new();
    for r in w.task_refs() {
        let t = w.task(r);
        tasks.push(Task::new(t.name.clone(), t.components, t.profile.clone()));
        for d in &t.deps {
            edges.push(RawEdge::new(
                w.task(d.producer).name.clone(),
                t.name.clone(),
                d.pattern,
            ));
        }
    }
    from_task_graph(w.name.clone(), tasks, edges, w.initial_input_bytes)
        .expect("rebuilding a valid workflow is valid")
}

proptest! {
    /// Builder-built and raw-graph-built workflows are structurally
    /// identical: same phases, same deps, same fingerprints, and their
    /// arena views (interned names, consumer CSR) agree entry for entry.
    #[test]
    fn raw_graph_rebuild_is_structurally_identical(w in layered_workflow()) {
        let rebuilt = rebuild_via_raw_graph(&w);

        // Phases and dependency lists (Task includes deps in its equality).
        prop_assert_eq!(&rebuilt, &w);

        // Fingerprints: the whole workflow and each task individually, under
        // the same tag the replanner uses for its per-task clean check.
        prop_assert_eq!(
            rebuilt.fingerprint_digest("arena-prop"),
            w.fingerprint_digest("arena-prop")
        );
        for r in w.task_refs() {
            prop_assert_eq!(
                rebuilt.task(r).fingerprint_digest("pdc-replan-task-v1"),
                w.task(r).fingerprint_digest("pdc-replan-task-v1")
            );
        }

        // Arena views agree: flat ids, names, and consumer slices.
        let (a, b) = (w.arena(), rebuilt.arena());
        prop_assert_eq!(a.task_count(), b.task_count());
        prop_assert_eq!(a.symbol_count(), b.symbol_count());
        for (flat, r) in w.task_refs().enumerate() {
            prop_assert_eq!(a.flat(r), Some(flat));
            prop_assert_eq!(b.flat(r), Some(flat));
            prop_assert_eq!(a.name(flat), b.name(flat));
            prop_assert_eq!(a.consumers(r), b.consumers(r));
        }
    }
}

/// `from_task_graph` is O(V + E): a 100k-task fan-out (the widest shape,
/// where any per-edge rescan of the splitter's consumer list would be
/// quadratic) must build — including arena derivation — in bounded wall
/// time even in debug builds. The pre-rework quadratic paths took minutes
/// here; the bound below is ~20x the observed debug-mode time, so it only
/// trips on complexity regressions, not machine noise.
#[test]
fn from_task_graph_builds_100k_tasks_in_bounded_time() {
    let start = Instant::now();
    let (tasks, edges) = scale::raw_graph(Shape::FanOut, 100_000, None);
    let w = from_task_graph("smoke-100k", tasks, edges, 1.0e6).expect("valid fan-out");
    let arena = w.arena();
    let elapsed = start.elapsed();

    assert_eq!(w.task_count(), 100_000);
    assert_eq!(w.phases.len(), 3);
    assert_eq!(arena.task_count(), 100_000);
    // src feeds every worker; workers each feed the sink.
    assert_eq!(
        arena.consumers(mashup_dag::TaskRef::new(0, 0)).len(),
        99_998
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "100k-task build took {elapsed:?}; expected well under 30s"
    );
}
