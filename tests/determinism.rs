//! Regression tests pinning simulated results: the fast-path substrate
//! (cached link shares, slab event queue) and the parallel sweep runner are
//! pure performance work, so makespans must stay bit-for-bit where the seed
//! implementation put them, and figure output must not depend on the sweep
//! worker count.

use mashup_bench as bench;
use mashup_bench::{run_strategy, Strategy};
use mashup_core::MashupConfig;
use mashup_workflows::{epigenomics, genome1000, srasearch};

/// Mashup makespans on a 4-node AWS-like cluster, captured from the seed
/// substrate (pre fast-path). Written with `{:?}` so the literals
/// round-trip exactly; any drift means simulated behavior changed, not
/// just performance.
const GOLDEN_MAKESPANS: [(&str, f64); 3] = [
    ("1000Genome", 923.1301865040341),
    ("SRAsearch", 418.0425812362353),
    ("Epigenomics", 5083.493038722836),
];

#[test]
fn mashup_makespans_match_seed_goldens_bit_for_bit() {
    for (name, golden) in GOLDEN_MAKESPANS {
        let w = match name {
            "1000Genome" => genome1000::workflow(),
            "SRAsearch" => srasearch::workflow(),
            "Epigenomics" => epigenomics::workflow(),
            _ => unreachable!(),
        };
        let r = run_strategy(&MashupConfig::aws(4), &w, Strategy::Mashup);
        assert_eq!(
            r.makespan_secs.to_bits(),
            golden.to_bits(),
            "{name}: makespan drifted from golden {golden:?} to {:?}",
            r.makespan_secs
        );
    }
}

#[test]
fn figure_json_is_byte_identical_with_tracing_enabled() {
    // The flight recorder is a pure observer: enabling `--trace-dir` must
    // not move a single byte of figure output. fig05 runs three full Mashup
    // plans, so this covers the PDC, the hybrid executor, and both
    // platforms. (The trace directory is process-global and write-only, so
    // recording the untraced reference first is the only ordering that
    // works inside one test binary.)
    bench::set_jobs(1);
    let untraced = serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize");
    let dir = std::env::temp_dir().join(format!("mashup-trace-test-{}", std::process::id()));
    bench::set_trace_dir(&dir);
    let traced = serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize");
    bench::set_jobs(0);
    assert_eq!(untraced, traced, "fig05 JSON depends on tracing");
    let written = std::fs::read_dir(&dir).expect("trace dir exists").count();
    assert!(written > 0, "tracing enabled but no trace files written");
}

#[test]
fn figure_json_is_byte_identical_across_job_counts() {
    // fig05 runs three full Mashup plans; fig08 covers two workflows and
    // two VM families. Together they exercise the sweep fan-out both below
    // and above the worker count.
    let serial = {
        bench::set_jobs(1);
        (
            serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
            serde_json::to_string_pretty(&bench::fig08_vm_families()).expect("serialize"),
        )
    };
    let parallel = {
        bench::set_jobs(3);
        (
            serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
            serde_json::to_string_pretty(&bench::fig08_vm_families()).expect("serialize"),
        )
    };
    bench::set_jobs(0);
    assert_eq!(serial.0, parallel.0, "fig05 JSON depends on --jobs");
    assert_eq!(serial.1, parallel.1, "fig08 JSON depends on --jobs");
}

#[test]
fn figure_json_is_byte_identical_with_plan_cache_on_and_off() {
    // fig05 plans three Mashup objectives (VM profiling + probes shared via
    // the cache); the accuracy table plans every paper workflow. Both must
    // serialize identically whether the planning cache is on or off —
    // memoization is a pure performance layer.
    bench::set_jobs(1);
    bench::set_plan_cache_enabled(false);
    let uncached = (
        serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
        serde_json::to_string_pretty(&bench::text_pdc_accuracy()).expect("serialize"),
    );
    bench::set_plan_cache_enabled(true);
    let cached = (
        serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
        serde_json::to_string_pretty(&bench::text_pdc_accuracy()).expect("serialize"),
    );
    // Run the cached variant twice so the second pass is all warm hits.
    let warm = (
        serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
        serde_json::to_string_pretty(&bench::text_pdc_accuracy()).expect("serialize"),
    );
    bench::set_jobs(0);
    assert_eq!(uncached.0, cached.0, "fig05 JSON depends on the plan cache");
    assert_eq!(
        uncached.1, cached.1,
        "accuracy JSON depends on the plan cache"
    );
    assert_eq!(uncached.0, warm.0, "fig05 JSON depends on cache warmth");
    assert_eq!(uncached.1, warm.1, "accuracy JSON depends on cache warmth");
}
