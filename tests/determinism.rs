//! Regression tests pinning simulated results: the fast-path substrate
//! (cached link shares, slab event queue) and the parallel sweep runner are
//! pure performance work, so makespans must stay bit-for-bit where the seed
//! implementation put them, and figure output must not depend on the sweep
//! worker count.

use mashup_bench as bench;
use mashup_bench::{run_strategy, run_strategy_traced, Strategy};
use mashup_cloud::{FaultPlan, FaultProfile};
use mashup_core::{ChaosSpec, MashupConfig, Tracer};
use mashup_sim::trace::to_jsonl;
use mashup_workflows::{epigenomics, genome1000, srasearch};

/// Mashup makespans on a 4-node AWS-like cluster, captured from the seed
/// substrate (pre fast-path). Written with `{:?}` so the literals
/// round-trip exactly; any drift means simulated behavior changed, not
/// just performance.
const GOLDEN_MAKESPANS: [(&str, f64); 3] = [
    ("1000Genome", 923.1301865040341),
    ("SRAsearch", 418.0425812362353),
    ("Epigenomics", 5083.493038722836),
];

#[test]
fn mashup_makespans_match_seed_goldens_bit_for_bit() {
    for (name, golden) in GOLDEN_MAKESPANS {
        let w = match name {
            "1000Genome" => genome1000::workflow(),
            "SRAsearch" => srasearch::workflow(),
            "Epigenomics" => epigenomics::workflow(),
            _ => unreachable!(),
        };
        let r = run_strategy(&MashupConfig::aws(4), &w, Strategy::Mashup);
        assert_eq!(
            r.makespan_secs.to_bits(),
            golden.to_bits(),
            "{name}: makespan drifted from golden {golden:?} to {:?}",
            r.makespan_secs
        );
    }
}

#[test]
fn chaos_replay_is_bit_identical_across_job_counts() {
    // The determinism matrix for the chaos layer: a grid of seeded
    // FaultPlans × paper workflows, every cell an adaptive Mashup run,
    // farmed over the shared serve pool at 1, 4, and 16 workers. Faults
    // come only from the seeded schedule and each scenario owns its
    // Simulation, so the full report *and* the full flow-level trace must
    // be bit-identical whatever thread interleaving the pool picks. The
    // plan cache is off for the matrix: which cell warms a cache section
    // first is a worker-count-dependent race, and the flight recorder
    // honestly reports hit/miss — the only admissible trace difference.
    fn run_matrix() -> Vec<String> {
        let cells: Vec<(u64, usize)> = (0..2u64)
            .flat_map(|s| (0..3).map(move |w| (s, w)))
            .collect();
        bench::par_map(cells, |(seed, wi)| {
            let (w, horizon) = match wi {
                0 => (genome1000::workflow(), 700.0),
                1 => (srasearch::workflow(), 350.0),
                _ => (epigenomics::workflow(), 3500.0),
            };
            let base = MashupConfig::aws(4);
            let plan = FaultPlan::generate(
                seed,
                &FaultProfile::mixed(horizon),
                base.cluster.nodes,
                base.cluster.instance.price_per_hour,
            );
            let cfg = base.with_chaos(ChaosSpec::new(plan).with_adaptive(true));
            let tracer = Tracer::new();
            let report = run_strategy_traced(&cfg, &w, Strategy::Mashup, &tracer);
            format!("{report:?}\n{}", to_jsonl(&tracer.take()))
        })
    }
    bench::set_plan_cache_enabled(false);
    bench::set_jobs(1);
    let serial = run_matrix();
    bench::set_jobs(4);
    let four = run_matrix();
    bench::set_jobs(16);
    let sixteen = run_matrix();
    bench::set_jobs(0);
    bench::set_plan_cache_enabled(true);
    assert_eq!(serial, four, "chaos replay depends on --jobs 4");
    assert_eq!(serial, sixteen, "chaos replay depends on --jobs 16");
}

#[test]
fn figure_json_is_byte_identical_with_tracing_enabled() {
    // The flight recorder is a pure observer: enabling `--trace-dir` must
    // not move a single byte of figure output. fig05 runs three full Mashup
    // plans, so this covers the PDC, the hybrid executor, and both
    // platforms. (The trace directory is process-global and write-only, so
    // recording the untraced reference first is the only ordering that
    // works inside one test binary.)
    bench::set_jobs(1);
    let untraced = serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize");
    let dir = std::env::temp_dir().join(format!("mashup-trace-test-{}", std::process::id()));
    bench::set_trace_dir(&dir);
    let traced = serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize");
    bench::set_jobs(0);
    assert_eq!(untraced, traced, "fig05 JSON depends on tracing");
    let written = std::fs::read_dir(&dir).expect("trace dir exists").count();
    assert!(written > 0, "tracing enabled but no trace files written");
}

#[test]
fn figure_json_is_byte_identical_across_job_counts() {
    // fig05 runs three full Mashup plans; fig08 covers two workflows and
    // two VM families. Together they exercise the sweep fan-out both below
    // and above the worker count.
    let serial = {
        bench::set_jobs(1);
        (
            serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
            serde_json::to_string_pretty(&bench::fig08_vm_families()).expect("serialize"),
        )
    };
    let parallel = {
        bench::set_jobs(3);
        (
            serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
            serde_json::to_string_pretty(&bench::fig08_vm_families()).expect("serialize"),
        )
    };
    bench::set_jobs(0);
    assert_eq!(serial.0, parallel.0, "fig05 JSON depends on --jobs");
    assert_eq!(serial.1, parallel.1, "fig08 JSON depends on --jobs");
}

#[test]
fn figure_json_is_byte_identical_with_plan_cache_on_and_off() {
    // fig05 plans three Mashup objectives (VM profiling + probes shared via
    // the cache); the accuracy table plans every paper workflow. Both must
    // serialize identically whether the planning cache is on or off —
    // memoization is a pure performance layer.
    bench::set_jobs(1);
    bench::set_plan_cache_enabled(false);
    let uncached = (
        serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
        serde_json::to_string_pretty(&bench::text_pdc_accuracy()).expect("serialize"),
    );
    bench::set_plan_cache_enabled(true);
    let cached = (
        serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
        serde_json::to_string_pretty(&bench::text_pdc_accuracy()).expect("serialize"),
    );
    // Run the cached variant twice so the second pass is all warm hits.
    let warm = (
        serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
        serde_json::to_string_pretty(&bench::text_pdc_accuracy()).expect("serialize"),
    );
    bench::set_jobs(0);
    assert_eq!(uncached.0, cached.0, "fig05 JSON depends on the plan cache");
    assert_eq!(
        uncached.1, cached.1,
        "accuracy JSON depends on the plan cache"
    );
    assert_eq!(uncached.0, warm.0, "fig05 JSON depends on cache warmth");
    assert_eq!(uncached.1, warm.1, "accuracy JSON depends on cache warmth");
}
