//! Regression tests pinning simulated results: the fast-path substrate
//! (cached link shares, slab event queue) and the parallel sweep runner are
//! pure performance work, so makespans must stay bit-for-bit where the seed
//! implementation put them, and figure output must not depend on the sweep
//! worker count.

use mashup_bench as bench;
use mashup_bench::{run_strategy, Strategy};
use mashup_core::MashupConfig;
use mashup_workflows::{epigenomics, genome1000, srasearch};

/// Mashup makespans on a 4-node AWS-like cluster, captured from the seed
/// substrate (pre fast-path). Written with `{:?}` so the literals
/// round-trip exactly; any drift means simulated behavior changed, not
/// just performance.
const GOLDEN_MAKESPANS: [(&str, f64); 3] = [
    ("1000Genome", 923.1301865040341),
    ("SRAsearch", 418.0425812362353),
    ("Epigenomics", 5083.493038722836),
];

#[test]
fn mashup_makespans_match_seed_goldens_bit_for_bit() {
    for (name, golden) in GOLDEN_MAKESPANS {
        let w = match name {
            "1000Genome" => genome1000::workflow(),
            "SRAsearch" => srasearch::workflow(),
            "Epigenomics" => epigenomics::workflow(),
            _ => unreachable!(),
        };
        let r = run_strategy(&MashupConfig::aws(4), &w, Strategy::Mashup);
        assert_eq!(
            r.makespan_secs.to_bits(),
            golden.to_bits(),
            "{name}: makespan drifted from golden {golden:?} to {:?}",
            r.makespan_secs
        );
    }
}

#[test]
fn figure_json_is_byte_identical_across_job_counts() {
    // fig05 runs three full Mashup plans; fig08 covers two workflows and
    // two VM families. Together they exercise the sweep fan-out both below
    // and above the worker count.
    let serial = {
        bench::set_jobs(1);
        (
            serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
            serde_json::to_string_pretty(&bench::fig08_vm_families()).expect("serialize"),
        )
    };
    let parallel = {
        bench::set_jobs(3);
        (
            serde_json::to_string_pretty(&bench::fig05_objectives()).expect("serialize"),
            serde_json::to_string_pretty(&bench::fig08_vm_families()).expect("serialize"),
        )
    };
    bench::set_jobs(0);
    assert_eq!(serial.0, parallel.0, "fig05 JSON depends on --jobs");
    assert_eq!(serial.1, parallel.1, "fig08 JSON depends on --jobs");
}
