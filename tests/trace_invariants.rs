//! The trace-invariant oracle against every paper workflow × strategy.
//!
//! Positive direction: a flow-level trace of each paper workflow under each
//! execution strategy must satisfy every invariant — precedence, capacity,
//! checkpoint-window math, warm-start eligibility, and cost reconciliation.
//!
//! Negative direction: corrupting a real trace in targeted ways must
//! trip the *specific* checker that guards the corrupted property, so the
//! oracle cannot rot into a rubber stamp.

use mashup_bench::{run_strategy_traced, Strategy};
use mashup_cloud::{FaultPlan, FaultProfile};
use mashup_core::trace::{
    check, Violation, CAPACITY, CKPT_WINDOW, COST, FAULT_ATTRIB, PRECEDENCE, REPLAN, WARM_START,
};
use mashup_core::{ChaosSpec, MashupConfig, TraceEvent, TraceRecord, Tracer, WorkflowReport};
use mashup_dag::Workflow;
use mashup_workflows::{epigenomics, genome1000, srasearch};

const STRATEGIES: [Strategy; 5] = [
    Strategy::Traditional,
    Strategy::ServerlessOnly,
    Strategy::Mashup,
    Strategy::Kepler,
    Strategy::Pegasus,
];

fn traced_run(
    cfg: &MashupConfig,
    workflow: &Workflow,
    strategy: Strategy,
) -> (WorkflowReport, Vec<TraceRecord>) {
    let tracer = Tracer::new();
    let report = run_strategy_traced(cfg, workflow, strategy, &tracer);
    (report, tracer.take())
}

fn assert_clean(workflow: &Workflow) {
    let cfg = MashupConfig::aws(4);
    for strategy in STRATEGIES {
        let (report, records) = traced_run(&cfg, workflow, strategy);
        assert!(!records.is_empty(), "{}: empty trace", strategy.label());
        let violations = check(&cfg, workflow, &report, &records);
        assert!(
            violations.is_empty(),
            "{} on '{}' violates invariants:\n{}",
            strategy.label(),
            workflow.name,
            render(&violations)
        );
    }
}

fn render(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("  {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn genome1000_holds_all_invariants_under_every_strategy() {
    assert_clean(&genome1000::workflow());
}

#[test]
fn srasearch_holds_all_invariants_under_every_strategy() {
    assert_clean(&srasearch::workflow());
}

#[test]
fn epigenomics_holds_all_invariants_under_every_strategy() {
    assert_clean(&epigenomics::workflow());
}

// --- negative direction: seeded corruptions trip the right checker ------

fn codes(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.code).collect()
}

#[test]
fn reordering_a_task_start_trips_the_precedence_checker() {
    let cfg = MashupConfig::aws(4);
    let w = srasearch::workflow();
    let (report, mut records) = traced_run(&cfg, &w, Strategy::Traditional);
    assert!(check(&cfg, &w, &report, &records).is_empty());
    // Pull a phase-1 task's start ahead of its producers by giving it the
    // lowest sequence number in the trace.
    let start = records
        .iter()
        .position(|r| matches!(&r.event, TraceEvent::TaskStart { phase: 1, .. }))
        .expect("a dependent task started");
    records[start].seq = 0;
    let v = check(&cfg, &w, &report, &records);
    assert!(codes(&v).contains(&PRECEDENCE), "got: {}", render(&v));
}

#[test]
fn inflating_segment_memory_trips_the_capacity_checker() {
    let cfg = MashupConfig::aws(4);
    let w = srasearch::workflow();
    let (report, mut records) = traced_run(&cfg, &w, Strategy::ServerlessOnly);
    assert!(check(&cfg, &w, &report, &records).is_empty());
    let r = records
        .iter_mut()
        .find(|r| matches!(&r.event, TraceEvent::SegmentStart { .. }))
        .expect("serverless segments ran");
    if let TraceEvent::SegmentStart { mem_gb, .. } = &mut r.event {
        // Claim more RAM than the function cap can hold.
        *mem_gb = cfg.provider.faas.memory_gb * 4.0;
    }
    let v = check(&cfg, &w, &report, &records);
    assert!(codes(&v).contains(&CAPACITY), "got: {}", render(&v));
}

#[test]
fn dropping_checkpoints_trips_the_window_checker() {
    // Shrink the function time cap so SRAsearch's long components must
    // checkpoint and resume across invocations.
    let mut cfg = MashupConfig::aws(4);
    cfg.provider.faas.timeout_secs = 120.0;
    let w = srasearch::workflow();
    let (report, mut records) = traced_run(&cfg, &w, Strategy::ServerlessOnly);
    assert!(
        records
            .iter()
            .any(|r| matches!(&r.event, TraceEvent::CheckpointResume { .. })),
        "the shrunken cap must force checkpoint chains"
    );
    assert!(check(&cfg, &w, &report, &records).is_empty());
    // Erase the checkpoints; the resumes now restore state nobody wrote.
    records.retain(|r| !matches!(&r.event, TraceEvent::Checkpoint { .. }));
    let v = check(&cfg, &w, &report, &records);
    assert!(codes(&v).contains(&CKPT_WINDOW), "got: {}", render(&v));
}

#[test]
fn forging_a_warm_start_trips_the_warm_start_checker() {
    let cfg = MashupConfig::aws(4);
    let w = srasearch::workflow();
    let (report, mut records) = traced_run(&cfg, &w, Strategy::ServerlessOnly);
    assert!(check(&cfg, &w, &report, &records).is_empty());
    // The first invocation of each code is necessarily cold; claim warm.
    let r = records
        .iter_mut()
        .find(|r| matches!(&r.event, TraceEvent::FnStart { cold: true, .. }))
        .expect("cold starts happened");
    if let TraceEvent::FnStart { cold, .. } = &mut r.event {
        *cold = false;
    }
    let v = check(&cfg, &w, &report, &records);
    assert!(codes(&v).contains(&WARM_START), "got: {}", render(&v));
}

/// A full adaptive chaos run on SRAsearch: mixed seeded faults sized to
/// the 16-node fault-free makespan, replanning controller on. The trace
/// contains preemptions, retries of both families, and replan events, so
/// it exercises every chaos checker.
fn chaos_run() -> (MashupConfig, Workflow, WorkflowReport, Vec<TraceRecord>) {
    let base = MashupConfig::aws(16);
    let plan = FaultPlan::generate(
        7,
        &FaultProfile::mixed(415.0),
        base.cluster.nodes,
        base.cluster.instance.price_per_hour,
    );
    let cfg = base.with_chaos(ChaosSpec::new(plan).with_adaptive(true));
    let w = srasearch::workflow();
    let (report, records) = traced_run(&cfg, &w, Strategy::Mashup);
    let has = |f: &dyn Fn(&TraceEvent) -> bool| records.iter().any(|r| f(&r.event));
    assert!(
        has(&|e| matches!(e, TraceEvent::Replan { .. }))
            && has(&|e| matches!(e, TraceEvent::CompRetry { .. }))
            && has(&|e| matches!(e, TraceEvent::FaultRetry { .. })),
        "chaos fixture run must replan and retry for the corruptions below to bite"
    );
    assert!(check(&cfg, &w, &report, &records).is_empty());
    (cfg, w, report, records)
}

#[test]
fn inflating_replanned_capacity_trips_the_replan_checker() {
    let (cfg, w, report, mut records) = chaos_run();
    // Claim the controller re-placed onto more nodes than survive the
    // preemptions known at that instant.
    let r = records
        .iter_mut()
        .find(|r| matches!(&r.event, TraceEvent::Replan { .. }))
        .expect("controller replanned");
    if let TraceEvent::Replan { nodes_after, .. } = &mut r.event {
        *nodes_after += 1;
    }
    let v = check(&cfg, &w, &report, &records);
    assert!(codes(&v).contains(&REPLAN), "got: {}", render(&v));
}

#[test]
fn orphaning_a_retry_trips_the_fault_attribution_checker() {
    let (cfg, w, report, mut records) = chaos_run();
    // Point a computation retry at a fault id no preemption ever carried.
    let r = records
        .iter_mut()
        .find(|r| matches!(&r.event, TraceEvent::CompRetry { .. }))
        .expect("preempted components retried");
    if let TraceEvent::CompRetry { id, .. } = &mut r.event {
        *id += 1_000;
    }
    let v = check(&cfg, &w, &report, &records);
    assert!(codes(&v).contains(&FAULT_ATTRIB), "got: {}", render(&v));
}

#[test]
fn scaling_billed_seconds_trips_the_cost_checker() {
    let cfg = MashupConfig::aws(4);
    let w = srasearch::workflow();
    let (report, mut records) = traced_run(&cfg, &w, Strategy::ServerlessOnly);
    assert!(check(&cfg, &w, &report, &records).is_empty());
    let r = records
        .iter_mut()
        .find(|r| matches!(&r.event, TraceEvent::FnEnd { .. }))
        .expect("functions completed");
    if let TraceEvent::FnEnd { billed_secs, .. } = &mut r.event {
        *billed_secs *= 1.5;
    }
    let v = check(&cfg, &w, &report, &records);
    assert!(codes(&v).contains(&COST), "got: {}", render(&v));
}
