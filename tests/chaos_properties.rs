//! Property: chaos never breaks the oracle.
//!
//! An arbitrary seeded [`FaultPlan`] — spot preemptions, storage error /
//! latency windows, link degradation, spot price traces — injected into
//! any paper workflow under any execution strategy must leave a run that
//! completes with a positive makespan and a flow-level trace that passes
//! every invariant checker: precedence, capacity, checkpoint windows,
//! warm starts, cost reconciliation, replanning consistency, and fault
//! attribution. The same holds with the online replanning controller
//! switched on. Faults come only from the seeded schedule, so each
//! failing case shrinks to a reproducible (seed, profile, workflow).

use mashup_bench::{run_strategy_traced, Strategy};
use mashup_cloud::{FaultPlan, FaultProfile};
use mashup_core::trace::check;
use mashup_core::{ChaosSpec, MashupConfig, Tracer};
use mashup_workflows::{epigenomics, genome1000, srasearch};
use proptest::prelude::*;

const STRATEGIES: [Strategy; 5] = [
    Strategy::Traditional,
    Strategy::ServerlessOnly,
    Strategy::Mashup,
    Strategy::Kepler,
    Strategy::Pegasus,
];

/// Paper workflows with a fault horizon roughly covering the bulk of each
/// run at 4 nodes, so drawn faults actually land mid-execution.
fn workflow_and_horizon(pick: u64) -> (mashup_dag::Workflow, f64) {
    match pick % 3 {
        0 => (genome1000::workflow(), 700.0),
        1 => (srasearch::workflow(), 350.0),
        _ => (epigenomics::workflow(), 3500.0),
    }
}

fn profile(pick: u64, horizon_secs: f64) -> FaultProfile {
    match pick % 3 {
        0 => FaultProfile::preemption(horizon_secs),
        1 => FaultProfile::storage(horizon_secs),
        _ => FaultProfile::mixed(horizon_secs),
    }
}

fn assert_chaos_run_clean(cfg: &MashupConfig, w: &mashup_dag::Workflow, strategy: Strategy) {
    let tracer = Tracer::new();
    let report = run_strategy_traced(cfg, w, strategy, &tracer);
    let records = tracer.take();
    assert!(
        report.makespan_secs > 0.0,
        "{} on '{}': run did not complete",
        strategy.label(),
        w.name
    );
    assert!(!records.is_empty(), "{}: empty trace", strategy.label());
    let violations = check(cfg, w, &report, &records);
    assert!(
        violations.is_empty(),
        "{} on '{}' violates invariants under chaos:\n{}",
        strategy.label(),
        w.name,
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every strategy survives an arbitrary seeded fault plan with a clean
    /// trace, and the Mashup strategy additionally survives it with the
    /// adaptive controller replanning mid-run.
    #[test]
    fn seeded_chaos_never_trips_the_oracle(seed in 0u64..10_000) {
        let (w, horizon) = workflow_and_horizon(seed);
        let prof = profile(seed / 3, horizon);
        let base = MashupConfig::aws(4);
        let plan = FaultPlan::generate(seed, &prof, base.cluster.nodes,
            base.cluster.instance.price_per_hour);

        let static_cfg = base.clone().with_chaos(ChaosSpec::new(plan.clone()));
        for strategy in STRATEGIES {
            assert_chaos_run_clean(&static_cfg, &w, strategy);
        }

        let adaptive_cfg = base.with_chaos(ChaosSpec::new(plan).with_adaptive(true));
        assert_chaos_run_clean(&adaptive_cfg, &w, Strategy::Mashup);
    }
}
