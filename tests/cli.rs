//! Integration tests of the `mashup` CLI binary.

use std::process::Command;

fn mashup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mashup"))
}

#[test]
fn validate_reports_structure() {
    let out = mashup()
        .args(["validate", "SRAsearch"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("5 tasks"));
    assert!(stdout.contains("404 components"));
}

#[test]
fn dot_emits_graphviz() {
    let out = mashup()
        .args(["dot", "1000Genome"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("Individual (1252)"));
}

#[test]
fn plan_prints_decisions() {
    let out = mashup()
        .args(["plan", "SRAsearch", "--nodes", "4"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FasterQ-Dump"));
    assert!(stdout.contains("profiling cost"));
}

#[test]
fn run_executes_a_strategy() {
    let out = mashup()
        .args([
            "run",
            "SRAsearch",
            "--nodes",
            "4",
            "--strategy",
            "traditional",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("traditional"));
    assert!(stdout.contains("Merge2"));
}

#[test]
fn unknown_flags_fail_cleanly() {
    let out = mashup()
        .args(["plan", "SRAsearch", "--bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = mashup()
        .args(["validate", "/nonexistent/wf.json"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn json_workflow_round_trips_through_the_cli() {
    let w = mashup::workflows::srasearch::workflow();
    let path = std::env::temp_dir().join("mashup-cli-test.json");
    std::fs::write(&path, mashup::dag::to_json(&w)).expect("write temp workflow");
    let out = mashup()
        .args(["validate", path.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("404 components"));
}
