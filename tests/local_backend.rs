//! Integration: the real thread-based backend executes a DAG correctly
//! under every placement and agrees with itself.

use mashup::dag::{DependencyPattern, Task, TaskProfile, TaskRef, WorkflowBuilder};
use mashup::local::{FaasPool, FaasPoolConfig, LocalBackend, LocalPlacement};
use std::time::Duration;

fn pipeline() -> mashup::dag::Workflow {
    // shard -> transform (one-to-one) -> reduce (fan-in)
    let mut b = WorkflowBuilder::new("pipeline");
    b.begin_phase();
    let shard = b.add_task(Task::new("shard", 12, TaskProfile::trivial()));
    b.begin_phase();
    let square = b.add_task(Task::new("square", 12, TaskProfile::trivial()));
    b.depend(square, shard, DependencyPattern::OneToOne);
    b.begin_phase();
    let reduce = b.add_task(Task::new("reduce", 1, TaskProfile::trivial()));
    b.depend(reduce, square, DependencyPattern::AllToAll);
    b.build().expect("valid")
}

fn backend() -> LocalBackend {
    let mut be = LocalBackend::new(
        3,
        FaasPool::new(FaasPoolConfig {
            cold_start: Duration::from_millis(3),
            keep_alive: Duration::from_secs(10),
            timeout: Duration::from_secs(30),
        }),
    );
    be.register_fn("shard", |ctx| vec![ctx.component as u8 + 1]);
    be.register_fn("square", |ctx| {
        let v = ctx.inputs[0][0] as u64;
        (v * v).to_le_bytes().to_vec()
    });
    be.register_fn("reduce", |ctx| {
        let total: u64 = ctx
            .inputs
            .iter()
            .map(|b| u64::from_le_bytes(b.as_ref().try_into().expect("u64")))
            .sum();
        total.to_le_bytes().to_vec()
    });
    be
}

fn expected() -> u64 {
    (1..=12u64).map(|v| v * v).sum()
}

fn result_of(be: &LocalBackend) -> u64 {
    u64::from_le_bytes(
        be.store()
            .must_get("out:reduce:0")
            .as_ref()
            .try_into()
            .expect("u64"),
    )
}

#[test]
fn all_pool_placement_is_correct() {
    let be = backend();
    be.run(&pipeline(), |_| LocalPlacement::Pool);
    assert_eq!(result_of(&be), expected());
}

#[test]
fn all_spawn_placement_is_correct() {
    let be = backend();
    let report = be.run(&pipeline(), |_| LocalPlacement::Spawn);
    assert_eq!(result_of(&be), expected());
    assert!(report.tasks.iter().any(|t| t.cold_starts > 0));
}

#[test]
fn every_hybrid_split_is_correct() {
    // All 8 phase-level placement combinations agree on the answer.
    for mask in 0u8..8 {
        let be = backend();
        be.run(&pipeline(), move |r: TaskRef| {
            if mask & (1 << r.phase) != 0 {
                LocalPlacement::Spawn
            } else {
                LocalPlacement::Pool
            }
        });
        assert_eq!(result_of(&be), expected(), "mask {mask}");
    }
}

#[test]
fn one_to_one_wiring_delivers_the_right_producer_bytes() {
    let mut be = backend();
    // square receives exactly its own shard's byte.
    be.register_fn("square", |ctx| {
        assert_eq!(ctx.inputs.len(), 1, "OneToOne gives exactly one input");
        let v = ctx.inputs[0][0] as u64;
        assert_eq!(v, ctx.component as u64 + 1, "wrong producer component");
        (v * v).to_le_bytes().to_vec()
    });
    be.run(&pipeline(), |_| LocalPlacement::Pool);
    assert_eq!(result_of(&be), expected());
}

#[test]
fn warm_reuse_happens_across_phases_with_shared_code_family() {
    let mut b = WorkflowBuilder::new("family");
    b.begin_phase();
    let a = b.add_task(Task::new(
        "merge1",
        2,
        TaskProfile::trivial().family("merge"),
    ));
    b.begin_phase();
    let c = b.add_task(Task::new(
        "merge2",
        2,
        TaskProfile::trivial().family("merge"),
    ));
    b.depend(c, a, DependencyPattern::OneToOne);
    let w = b.build().expect("valid");

    let mut be = backend();
    be.register_fn("merge1", |_| vec![1]);
    be.register_fn("merge2", |_| vec![2]);
    let report = be.run(&w, |_| LocalPlacement::Spawn);
    // Phase 2's invocations reuse phase 1's warm workers.
    let m2 = report
        .tasks
        .iter()
        .find(|t| t.name == "merge2")
        .expect("ran");
    assert_eq!(m2.cold_starts, 0, "family warm pool should be reused");
}
