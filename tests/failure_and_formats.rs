//! Integration: failure injection through the replicated store, JSON/DOT
//! format round trips, and the GCP-like provider preset.

use mashup::engine::{
    execute_in, CloudEnv, KillReason, MashupConfig, PlacementPlan, Platform, TraceEvent, Tracer,
};
use mashup::prelude::*;
use std::collections::HashMap;

#[test]
fn storage_failures_are_recovered_from_replicas() {
    // Run a serverless workflow with a high GET failure probability: every
    // failed read retries from a replica; the run completes, just slower.
    let w = srasearch::workflow();
    let mut cfg = MashupConfig::aws(4);
    cfg.provider.storage.get_failure_prob = 0.2;
    let mut env = CloudEnv::new(&cfg);
    let plan = PlacementPlan::uniform(&w, Platform::Serverless);
    let report = execute_in(&mut env, &cfg, &w, &plan, "faulty");
    assert!(report.makespan_secs > 0.0);
    assert!(
        env.store.injected_failures() > 0,
        "failure injection should have fired"
    );

    // The same run without failures is never slower.
    let mut clean_cfg = MashupConfig::aws(4);
    clean_cfg.provider.storage.get_failure_prob = 0.0;
    let clean = mashup::engine::execute(&clean_cfg, &w, &plan, "clean");
    assert!(clean.makespan_secs <= report.makespan_secs);
}

#[test]
fn faas_platform_failures_are_recovered_end_to_end() {
    // Inject microVM failures on a full workflow: checkpoints plus segment
    // retries must carry every task to completion. The flight recorder
    // proves the recovery mechanism actually ran: every killed invocation
    // must be followed by a fresh invocation of the same (task, chain).
    let w = srasearch::workflow();
    let mut cfg = MashupConfig::aws(4);
    // High enough that some kills land inside the (short) invocation
    // windows for this RNG stream; the property under test is recovery,
    // not the exact kill count.
    cfg.provider.faas.failure_prob = 0.3;
    let mut env = CloudEnv::new(&cfg);
    let tracer = Tracer::new();
    env.attach_tracer(tracer.clone());
    let plan = PlacementPlan::uniform(&w, Platform::Serverless);
    let report = execute_in(&mut env, &cfg, &w, &plan, "flaky-faas");
    assert_eq!(report.tasks.len(), w.task_count());
    assert!(env.faas.kills() > 0, "failures should have fired");

    // Reconstruct kill -> restart span chains from the trace.
    let records = tracer.take();
    let mut chain_of: HashMap<u64, (String, u32)> = HashMap::new();
    let mut segments: Vec<(u64, String, u32)> = Vec::new(); // (seq, task, chain)
    let mut kills: Vec<(u64, u64, KillReason)> = Vec::new(); // (seq, inv, reason)
    for r in &records {
        match &r.event {
            TraceEvent::SegmentStart {
                task, chain, inv, ..
            } => {
                chain_of.insert(*inv, (task.clone(), *chain));
                segments.push((r.seq, task.clone(), *chain));
            }
            TraceEvent::FnKill { id, reason, .. } => kills.push((r.seq, *id, *reason)),
            _ => {}
        }
    }
    assert!(
        kills.iter().any(|(_, _, r)| *r == KillReason::Injected),
        "expected injected kills in the trace"
    );
    for (kill_seq, inv, reason) in &kills {
        let (task, chain) = chain_of
            .get(inv)
            .unwrap_or_else(|| panic!("kill of invocation {inv} that never ran a segment"));
        assert!(
            segments
                .iter()
                .any(|(seq, t, c)| seq > kill_seq && t == task && c == chain),
            "invocation {inv} of '{task}' chain {chain} was killed ({reason:?} at seq \
             {kill_seq}) but never restarted"
        );
    }

    // A clean run is never slower than the failure-ridden one.
    let mut clean = MashupConfig::aws(4);
    clean.provider.faas.failure_prob = 0.0;
    let baseline = mashup::engine::execute(&clean, &w, &plan, "clean");
    assert!(baseline.makespan_secs <= report.makespan_secs);
}

#[test]
fn paper_workflows_round_trip_through_json() {
    for w in [
        genome1000::workflow(),
        srasearch::workflow(),
        epigenomics::workflow(),
    ] {
        let json = mashup::dag::to_json(&w);
        let back = mashup::dag::from_json(&json).expect("round trip");
        assert_eq!(w, back);
    }
}

#[test]
fn dot_export_names_every_task() {
    let w = epigenomics::workflow();
    let dot = mashup::dag::to_dot(&w);
    for r in w.task_refs() {
        assert!(dot.contains(&w.task(r).name), "missing {}", w.task(r).name);
    }
}

#[test]
fn gcp_like_provider_preserves_the_trends() {
    // The §5 portability claim: trends survive provider constants changing.
    let w = srasearch::workflow();
    let cfg = MashupConfig::gcp(8);
    let traditional = run_traditional_tuned(&cfg, &w);
    let outcome = Mashup::new(cfg).run(&w);
    assert!(outcome.report.makespan_secs < traditional.makespan_secs);
}

#[test]
fn reports_serialize_to_json() {
    let w = srasearch::workflow();
    let outcome = Mashup::new(MashupConfig::aws(4)).run(&w);
    let json = serde_json::to_string(&outcome).expect("serialize outcome");
    assert!(json.contains("FasterQ-Dump"));
    let summary: serde_json::Value = serde_json::from_str(&json).expect("parse");
    assert!(
        summary["report"]["makespan_secs"]
            .as_f64()
            .expect("present")
            > 0.0
    );
}

#[test]
fn synthetic_workflows_run_end_to_end() {
    // The engine must handle arbitrary valid DAGs, not just the three
    // paper workflows.
    for seed in [1u64, 7, 23] {
        let cfg = SyntheticConfigFixture::small();
        let w = mashup::workflows::generate(&cfg, seed);
        let outcome = Mashup::new(MashupConfig::aws(4)).run(&w);
        assert_eq!(outcome.report.tasks.len(), w.task_count());
        assert!(outcome.pdc.plan.covers(&w));
    }
}

/// Small synthetic config so debug-mode tests stay fast.
struct SyntheticConfigFixture;
impl SyntheticConfigFixture {
    fn small() -> mashup::workflows::SyntheticConfig {
        mashup::workflows::SyntheticConfig {
            phases: 3,
            tasks_per_phase: (1, 2),
            component_choices: vec![1, 4, 16, 64],
            compute_secs: (1.0, 30.0),
            io_bytes: (1.0e6, 1.0e8),
            slowdown: (0.8, 1.6),
            recurring_prob: 0.1,
        }
    }
}
