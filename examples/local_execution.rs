//! Execute a workflow with *real threads and real bytes* through the local
//! backend: a thread-pool "cluster", spawn-per-invocation "functions" with
//! genuine cold-start sleeps, and an in-memory object store. The same DAG
//! and placement semantics as the simulator — here computing an actual
//! result (word counts over generated text shards).
//!
//! ```text
//! cargo run --release --example local_execution
//! ```

use mashup::dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};
use mashup::local::{FaasPool, FaasPoolConfig, LocalBackend, LocalPlacement};
use std::time::Duration;

fn main() {
    // A map/reduce-shaped workflow: 16 shard counters fan into one summer.
    let mut b = WorkflowBuilder::new("wordcount");
    b.begin_phase();
    let count = b.add_task(Task::new("count", 16, TaskProfile::trivial()));
    b.begin_phase();
    let sum = b.add_task(Task::new("sum", 1, TaskProfile::trivial()));
    b.depend(sum, count, DependencyPattern::AllToAll);
    let workflow = b.build().expect("valid workflow");

    let mut backend = LocalBackend::new(
        4, // "cluster" worker threads
        FaasPool::new(FaasPoolConfig {
            cold_start: Duration::from_millis(25),
            keep_alive: Duration::from_secs(10),
            timeout: Duration::from_secs(30),
        }),
    );

    // Stage the "dataset": one text shard per component.
    let corpus = "the quick brown fox jumps over the lazy dog ";
    backend.store().put("initial", corpus.repeat(5000));

    backend.register_fn("count", |ctx| {
        let text = ctx
            .inputs
            .first()
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .unwrap_or_default();
        // Each component counts a different word of the shared shard.
        let words = [
            "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
        ];
        let word = words[ctx.component % words.len()];
        let n = text.split_whitespace().filter(|w| *w == word).count() as u64;
        n.to_le_bytes().to_vec()
    });
    backend.register_fn("sum", |ctx| {
        let total: u64 = ctx
            .inputs
            .iter()
            .map(|b| u64::from_le_bytes(b.as_ref().try_into().expect("u64 payload")))
            .sum();
        total.to_le_bytes().to_vec()
    });

    // Run it twice: once all on the pool, once hybrid (wide phase spawned
    // as "functions" with real cold starts).
    for (label, f) in [
        (
            "pool-only  ",
            Box::new(|_r: mashup::dag::TaskRef| LocalPlacement::Pool)
                as Box<dyn Fn(mashup::dag::TaskRef) -> LocalPlacement>,
        ),
        (
            "hybrid     ",
            Box::new(|r: mashup::dag::TaskRef| {
                if r.phase == 0 {
                    LocalPlacement::Spawn
                } else {
                    LocalPlacement::Pool
                }
            }),
        ),
    ] {
        let report = backend.run(&workflow, f);
        let result = backend.store().must_get("out:sum:0");
        let total = u64::from_le_bytes(result.as_ref().try_into().expect("u64"));
        println!(
            "{label} wall {:>6.1} ms | total word hits {total} | cold starts {}",
            report.wall_secs * 1000.0,
            report.tasks.iter().map(|t| t.cold_starts).sum::<u64>()
        );
    }
    println!("\nboth placements computed the identical result — the engine's");
    println!("placement choice changes cost and latency, never the answer.");
}
