//! Define a workflow in JSON (the format Mashup users would write), load
//! and validate it, export its DAG to Graphviz, and run it through the
//! engine.
//!
//! ```text
//! cargo run --release --example custom_workflow [path/to/workflow.json]
//! ```

use mashup::prelude::*;

const EMBEDDED: &str = r#"
{
  "name": "protein-screen",
  "initial_input_bytes": 5e9,
  "phases": [
    { "tasks": [ {
        "name": "Dock",
        "components": 96,
        "profile": {
          "compute_secs_vm": 15.0, "serverless_slowdown": 1.1,
          "input_bytes": 5e7, "output_bytes": 1e7,
          "memory_gb": 1.5, "vm_local_contention": 2.0,
          "runtime_jitter": 0.05, "recurring": false,
          "checkpoint_bytes": 1e7
        },
        "deps": []
    } ] },
    { "tasks": [ {
        "name": "Score",
        "components": 96,
        "profile": {
          "compute_secs_vm": 4.0, "serverless_slowdown": 1.0,
          "input_bytes": 1e7, "output_bytes": 1e6,
          "memory_gb": 1.0, "vm_local_contention": 1.0,
          "runtime_jitter": 0.05, "recurring": false,
          "checkpoint_bytes": 1e6
        },
        "deps": [ { "producer": { "phase": 0, "task": 0 },
                    "pattern": "OneToOne" } ]
    } ] },
    { "tasks": [ {
        "name": "Rank",
        "components": 1,
        "profile": {
          "compute_secs_vm": 60.0, "serverless_slowdown": 0.9,
          "input_bytes": 9.6e7, "output_bytes": 1e6,
          "memory_gb": 2.0, "vm_local_contention": 0.0,
          "runtime_jitter": 0.03, "recurring": false,
          "checkpoint_bytes": 5e6
        },
        "deps": [ { "producer": { "phase": 1, "task": 0 },
                    "pattern": "AllToAll" } ]
    } ] }
  ]
}
"#;

fn main() {
    // 1. Load: from a file if given, else the embedded definition.
    let json = std::env::args()
        .nth(1)
        .map(|p| std::fs::read_to_string(&p).expect("readable workflow file"))
        .unwrap_or_else(|| EMBEDDED.to_string());
    let workflow = mashup::dag::from_json(&json).expect("valid workflow definition");
    println!(
        "loaded '{}': {} tasks / {} components / {} phases",
        workflow.name,
        workflow.task_count(),
        workflow.component_count(),
        workflow.phases.len()
    );

    // 2. Export the DAG for visualisation.
    let dot = mashup::dag::to_dot(&workflow);
    std::fs::write("/tmp/custom_workflow.dot", &dot).expect("write dot file");
    println!("DAG written to /tmp/custom_workflow.dot (render with graphviz)");

    // 3. Run Mashup vs the baselines on a small cluster.
    let cfg = MashupConfig::aws(4);
    let outcome = Mashup::new(cfg.clone()).run(&workflow);
    let traditional = run_traditional_tuned(&cfg, &workflow);
    let serverless = run_serverless_only(&cfg, &workflow);
    println!("\nplacements:");
    for d in &outcome.pdc.decisions {
        println!("  {:<8} -> {}", d.name, d.platform);
    }
    println!("\nresults on 4 nodes:");
    for (label, r) in [
        ("traditional", &traditional),
        ("serverless", &serverless),
        ("mashup", &outcome.report),
    ] {
        println!(
            "  {:<12} {:>8.1}s  ${:.4}",
            label,
            r.makespan_secs,
            r.expense.total()
        );
    }
}
