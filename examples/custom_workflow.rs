//! Define a workflow in JSON (the format Mashup users would write), load
//! and validate it, export its DAG to Graphviz, and run it through the
//! engine.
//!
//! ```text
//! cargo run --release --example custom_workflow [path/to/workflow.json]
//! ```

use mashup::prelude::*;

/// The example definition, also usable directly as a file:
/// `mashup analyze examples/protein_screen.json`.
const EMBEDDED: &str = include_str!("protein_screen.json");

fn main() {
    // 1. Load: from a file if given, else the embedded definition.
    let json = std::env::args()
        .nth(1)
        .map(|p| std::fs::read_to_string(&p).expect("readable workflow file"))
        .unwrap_or_else(|| EMBEDDED.to_string());
    let workflow = mashup::dag::from_json(&json).expect("valid workflow definition");
    println!(
        "loaded '{}': {} tasks / {} components / {} phases",
        workflow.name,
        workflow.task_count(),
        workflow.component_count(),
        workflow.phases.len()
    );

    // 2. Export the DAG for visualisation.
    let dot = mashup::dag::to_dot(&workflow);
    std::fs::write("/tmp/custom_workflow.dot", &dot).expect("write dot file");
    println!("DAG written to /tmp/custom_workflow.dot (render with graphviz)");

    // 3. Run Mashup vs the baselines on a small cluster.
    let cfg = MashupConfig::aws(4);
    let outcome = Mashup::new(cfg.clone()).run(&workflow);
    let traditional = run_traditional_tuned(&cfg, &workflow);
    let serverless = run_serverless_only(&cfg, &workflow);
    println!("\nplacements:");
    for d in &outcome.pdc.decisions {
        println!("  {:<8} -> {}", d.name, d.platform);
    }
    println!("\nresults on 4 nodes:");
    for (label, r) in [
        ("traditional", &traditional),
        ("serverless", &serverless),
        ("mashup", &outcome.report),
    ] {
        println!(
            "  {:<12} {:>8.1}s  ${:.4}",
            label,
            r.makespan_secs,
            r.expense.total()
        );
    }
}
