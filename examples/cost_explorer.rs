//! Sweep cluster sizes and optimization objectives for one workflow and
//! print the full cost/performance landscape — the tool a user would run
//! before committing to a cluster size.
//!
//! ```text
//! cargo run --release --example cost_explorer -- [1000Genome|SRAsearch|Epigenomics]
//! ```

use mashup::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SRAsearch".into());
    let workflow = match name.as_str() {
        "1000Genome" => genome1000::workflow(),
        "Epigenomics" => epigenomics::workflow(),
        _ => srasearch::workflow(),
    };
    println!("cost landscape for {}\n", workflow.name);
    println!(
        "{:>5}  {:>12} {:>9}   {:>12} {:>9}   {:>7} {:>7}",
        "nodes", "trad time", "trad $", "mashup time", "mashup $", "Δtime", "Δcost"
    );
    for nodes in [2usize, 8, 16, 32, 64] {
        let cfg = MashupConfig::aws(nodes);
        let trad = run_traditional_tuned(&cfg, &workflow);
        let mashup = Mashup::new(cfg).run(&workflow).report;
        println!(
            "{:>5}  {:>11.0}s {:>9.4}   {:>11.0}s {:>9.4}   {:>6.1}% {:>6.1}%",
            nodes,
            trad.makespan_secs,
            trad.expense.total(),
            mashup.makespan_secs,
            mashup.expense.total(),
            improvement_pct(mashup.makespan_secs, trad.makespan_secs),
            improvement_pct(mashup.expense.total(), trad.expense.total()),
        );
    }

    // The Fig. 5 question: what does optimizing for expense instead buy?
    println!("\nobjective study at 16 nodes:");
    let cfg = MashupConfig::aws(16);
    for (label, obj) in [
        ("time", Objective::ExecutionTime),
        ("expense", Objective::Expense),
        ("both", Objective::Both),
    ] {
        let r = Mashup::new(cfg.clone()).with_objective(obj).run(&workflow);
        println!(
            "  minimize {:<8} -> {:>8.0}s  ${:.4}  ({} of {} tasks serverless)",
            label,
            r.report.makespan_secs,
            r.report.expense.total(),
            r.report.plan.count(Platform::Serverless),
            workflow.task_count(),
        );
    }
}
