//! Plan in the simulator, execute for real: the PDC decides placements on
//! the simulated substrates, then the *same plan* drives the thread-based
//! local backend with actual closures and bytes — the deployment story a
//! Mashup user would follow (profile once, run many times).
//!
//! ```text
//! cargo run --release --example plan_then_execute
//! ```

use mashup::dag::{DependencyPattern, Task, TaskProfile, WorkflowBuilder};
use mashup::local::{FaasPool, FaasPoolConfig, LocalBackend, LocalPlacement};
use mashup::prelude::*;
use std::time::Duration;

fn main() {
    // A checksum pipeline: many independent hash shards, one verifier.
    let mut b = WorkflowBuilder::new("checksum");
    b.initial_input_bytes(1.0e8);
    b.begin_phase();
    let hash = b.add_task(Task::new(
        "hash",
        64,
        TaskProfile::trivial()
            .compute(8.0)
            .io(1.5e6, 64.0)
            .memory(1.5)
            .contention(2.0),
    ));
    b.begin_phase();
    let verify = b.add_task(Task::new(
        "verify",
        1,
        TaskProfile::trivial().compute(20.0).io(4096.0, 64.0),
    ));
    b.depend(verify, hash, DependencyPattern::AllToAll);
    let workflow = b.build().expect("valid workflow");

    // --- 1. PLAN on the simulated substrates -----------------------------
    let cfg = MashupConfig::aws(2);
    let outcome = Mashup::new(cfg).run(&workflow);
    println!("simulated plan (2-node cluster):");
    for d in &outcome.pdc.decisions {
        println!(
            "  {:<8} -> {:<10} (T_vm {:.1}s vs T_serverless≈{:.1}s)",
            d.name,
            d.platform.to_string(),
            d.t_vm_secs,
            d.t_serverless_est_secs
        );
    }
    println!("\nsimulated timeline:\n{}", outcome.report.render_gantt(48));

    // --- 2. EXECUTE the same plan on the local backend -------------------
    let mut backend = LocalBackend::new(
        4,
        FaasPool::new(FaasPoolConfig {
            cold_start: Duration::from_millis(15),
            keep_alive: Duration::from_secs(10),
            timeout: Duration::from_secs(30),
        }),
    );
    backend.store().put("initial", vec![7u8; 4096]);
    backend.register_fn("hash", |ctx| {
        // FNV over the shared input, salted by the component index.
        let mut h: u64 = 0xcbf29ce484222325 ^ ctx.component as u64;
        for b in ctx.inputs.iter().flat_map(|b| b.iter()) {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h.to_le_bytes().to_vec()
    });
    backend.register_fn("verify", |ctx| {
        let combined = ctx
            .inputs
            .iter()
            .map(|b| u64::from_le_bytes(b.as_ref().try_into().expect("u64")))
            .fold(0u64, |a, h| a ^ h);
        combined.to_le_bytes().to_vec()
    });

    let plan = outcome.pdc.plan.clone();
    let report = backend.run(&workflow, move |r| {
        match plan.platform(r).expect("plan covers workflow") {
            Platform::Serverless => LocalPlacement::Spawn,
            Platform::VmCluster => LocalPlacement::Pool,
        }
    });

    let digest = backend.store().must_get("out:verify:0");
    println!("local execution under the simulated plan:");
    for t in &report.tasks {
        println!(
            "  {:<8} {:?}  {:>7.1} ms  ({} cold starts)",
            t.name,
            t.placement,
            t.wall_secs * 1000.0,
            t.cold_starts
        );
    }
    println!(
        "combined digest: {:016x}  (wall {:.1} ms)",
        u64::from_le_bytes(digest.as_ref().try_into().expect("u64")),
        report.wall_secs * 1000.0
    );
}
