//! Quickstart: run Mashup on a small custom workflow and compare it with a
//! traditional VM-cluster execution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mashup::prelude::*;

fn main() {
    // 1. Describe a workflow: a wide fan-out of short components feeding a
    //    single merge — the shape serverless loves and small clusters hate.
    let mut b = WorkflowBuilder::new("quickstart");
    b.initial_input_bytes(2.0e9);
    b.begin_phase();
    let extract = b.add_task(Task::new(
        "extract",
        128,
        TaskProfile::trivial()
            .compute(12.0)
            .io(1.0e7, 5.0e6)
            .memory(1.5) // 32 co-residents per 16 GiB node: swap thrash
            .contention(2.0),
    ));
    b.begin_phase();
    let merge = b.add_task(Task::new(
        "merge",
        1,
        TaskProfile::trivial()
            .compute(90.0)
            .slowdown(1.2)
            .io(6.4e8, 1.0e7)
            .memory(2.0),
    ));
    b.depend(merge, extract, DependencyPattern::AllToAll);
    let workflow = b.build().expect("workflow is valid");

    // 2. Pick an environment: 4 r5.large-like nodes + a Lambda-like platform.
    let cfg = MashupConfig::aws(4);

    // 3. Let Mashup's PDC profile the workflow and choose placements.
    let outcome = Mashup::new(cfg.clone()).run(&workflow);
    println!("=== PDC decisions ===");
    for d in &outcome.pdc.decisions {
        println!(
            "  {:<10} C={:<4} T_vm={:>8.1}s  T_serverless≈{:>8.1}s  -> {}",
            d.name, d.components, d.t_vm_secs, d.t_serverless_est_secs, d.platform
        );
    }

    // 4. Compare with the traditional all-VM execution.
    let traditional = run_traditional(&cfg, &workflow);
    println!("\n=== Results ===");
    println!(
        "  traditional cluster : {:>8.1}s  ${:.4}",
        traditional.makespan_secs,
        traditional.expense.total()
    );
    println!(
        "  mashup (hybrid)     : {:>8.1}s  ${:.4}",
        outcome.report.makespan_secs,
        outcome.report.expense.total()
    );
    println!(
        "  improvement         : {:>7.1}% time, {:.1}% expense",
        improvement_pct(outcome.report.makespan_secs, traditional.makespan_secs),
        improvement_pct(outcome.report.expense.total(), traditional.expense.total())
    );
}
