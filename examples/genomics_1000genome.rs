//! Run the paper's 1000Genome workflow end to end: Mashup vs every
//! baseline, on a cluster size of your choice.
//!
//! ```text
//! cargo run --release --example genomics_1000genome -- [nodes]
//! ```

use mashup::prelude::*;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let cfg = MashupConfig::aws(nodes);
    let workflow = genome1000::workflow();
    println!(
        "1000Genome: {} tasks, {} components, {} phases, on {} nodes\n",
        workflow.task_count(),
        workflow.component_count(),
        workflow.phases.len(),
        nodes
    );

    let traditional = run_traditional_tuned(&cfg, &workflow);
    let serverless = run_serverless_only(&cfg, &workflow);
    let pegasus = run_pegasus(&cfg, &workflow);
    let kepler = run_kepler(&cfg, &workflow);
    let mashup = Mashup::new(cfg).run(&workflow);

    println!("=== Placement chosen by Mashup's PDC ===");
    for d in &mashup.pdc.decisions {
        let reason = d
            .forced_vm_reason
            .as_deref()
            .map(|r| format!(" (forced: {r})"))
            .unwrap_or_default();
        println!("  {:<18} -> {}{}", d.name, d.platform, reason);
    }

    println!("\n=== Makespan and expense ===");
    let rows: Vec<(&str, &WorkflowReport)> = vec![
        ("traditional", &traditional),
        ("serverless-only", &serverless),
        ("pegasus-like", &pegasus),
        ("kepler-like", &kepler),
        ("mashup", &mashup.report),
    ];
    for (name, r) in &rows {
        println!(
            "  {:<16} {:>10.1}s   ${:>8.4}   (vs traditional: {:+.1}% time, {:+.1}% cost)",
            name,
            r.makespan_secs,
            r.expense.total(),
            improvement_pct(r.makespan_secs, traditional.makespan_secs),
            improvement_pct(r.expense.total(), traditional.expense.total()),
        );
    }

    println!("\n=== Serverless overheads inside Mashup's run ===");
    println!(
        "  cold start {:.1}s, I/O {:.1}s, scaling {:.1}s, {} checkpoints",
        mashup.report.total_cold_start_secs(),
        mashup.report.total_io_secs(),
        mashup.report.total_scaling_secs(),
        mashup.report.total_checkpoints()
    );

    println!("\n=== Hybrid timeline ===");
    print!("{}", mashup.report.render_gantt(60));
}
